open Repro_relational
module Snap = Repro_durability.Snap

type mode = Off | Keys_only | Full

let mode_to_string = function
  | Off -> "off"
  | Keys_only -> "keys-only"
  | Full -> "full"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Some Off
  | "keys" | "keys-only" -> Some Keys_only
  | "full" -> Some Full
  | _ -> None

(* A per-column hash index over a source's projection: join value ->
   (projected tuple -> multiplicity). Same shape as Base_table's source
   indexes, maintained alongside [projs] so a local answer probes
   instead of copying and hashing the whole projection per leg. *)
type index = (Value.t, (Tuple.t, int) Hashtbl.t) Hashtbl.t

type t = {
  mode : mode;
  strategy : Join_strategy.t;
  view : View_def.t option;
  tracked : int array array;
  (* required ⊆ tracked, per source: the leg against that source can be
     answered from the projection alone. *)
  answerable : bool array;
  widths : int array;
  projs : Bag.t array;
  genesis : Bag.t array;
  (* per source: (local join column, its position in [tracked], index) —
     derived from [projs], maintained by [apply], rebuilt by
     [restore]/[reset]. Join columns are always tracked (both modes), so
     every probe an answerable leg issues hits an index. *)
  indexes : (int * int * index) list array;
}

let off () =
  { mode = Off; strategy = Join_strategy.default; view = None; tracked = [||];
    answerable = [||]; widths = [||]; projs = [||]; genesis = [||];
    indexes = [||] }

let index_add (idx : index) pt pos count =
  let v = Tuple.get pt pos in
  let bucket =
    match Hashtbl.find_opt idx v with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx v b;
        b
  in
  let c = Option.value ~default:0 (Hashtbl.find_opt bucket pt) + count in
  if c = 0 then begin
    Hashtbl.remove bucket pt;
    if Hashtbl.length bucket = 0 then Hashtbl.remove idx v
  end
  else Hashtbl.replace bucket pt c

(* Local columns of source [j] among a list of global attribute
   indices. *)
let localize view j globals =
  let ofs = View_def.offset view j and w = View_def.width view j in
  List.filter_map
    (fun g -> if g >= ofs && g < ofs + w then Some (g - ofs) else None)
    globals

(* Global attributes a leg's result can depend on: every join equality
   column (join keys), every join residual's attributes (Algebra.join
   evaluates residuals against both operands of the combined range),
   the selection's attributes and the projected attributes (both applied
   to the full-width tuple at the end of the sweep). *)
let referenced view =
  let acc = ref [] in
  let add g = acc := g :: !acc in
  Array.iter
    (fun (js : Join_spec.t) ->
      List.iter
        (fun (l, r) ->
          add l;
          add r)
        js.Join_spec.equalities;
      match js.Join_spec.residual with
      | Some p -> List.iter add (Predicate.attrs_used p)
      | None -> ())
    (View_def.joins view);
  List.iter add (Predicate.attrs_used (View_def.selection view));
  Array.iter add (View_def.projection view);
  !acc

let join_columns view =
  let acc = ref [] in
  Array.iter
    (fun (js : Join_spec.t) ->
      List.iter
        (fun (l, r) ->
          acc := l :: r :: !acc)
        js.Join_spec.equalities)
    (View_def.joins view);
  !acc

let project_relation rel cols =
  let b = Bag.create () in
  Relation.iter (fun tup c -> Bag.add b (Tuple.project tup cols) c) rel;
  b

let rebuild_index t j =
  List.iter
    (fun (_, pos, idx) ->
      Hashtbl.reset idx;
      Bag.iter (fun pt c -> index_add idx pt pos c) t.projs.(j))
    t.indexes.(j)

let create ~view ~mode ?(strategy = Join_strategy.default) ~initial () =
  match mode with
  | Off -> off ()
  | _ ->
      let n = View_def.n_sources view in
      if Array.length initial <> n then
        invalid_arg
          (Printf.sprintf "Aux_store.create: %d initial relations for %d sources"
             (Array.length initial) n);
      let refd = referenced view and jcols = join_columns view in
      let required = Array.init n (fun j -> localize view j refd) in
      let tracked =
        Array.init n (fun j ->
            let keys = Schema.key_indices (View_def.schema view j) in
            let wanted =
              match mode with
              | Off -> assert false
              | Keys_only -> keys @ localize view j jcols
              | Full -> keys @ required.(j)
            in
            Array.of_list (List.sort_uniq compare wanted))
      in
      let answerable =
        Array.init n (fun j ->
            List.for_all
              (fun c -> Array.exists (fun c' -> c' = c) tracked.(j))
              required.(j))
      in
      let widths = Array.init n (View_def.width view) in
      let indexes =
        Array.init n (fun j ->
            List.filter_map
              (fun col ->
                let pos = ref (-1) in
                Array.iteri
                  (fun k c -> if c = col then pos := k)
                  tracked.(j);
                if !pos < 0 then None
                else Some (col, !pos, (Hashtbl.create 64 : index)))
              (List.sort_uniq compare (localize view j jcols)))
      in
      let t =
        { mode; strategy; view = Some view; tracked; answerable; widths;
          projs =
            Array.init n (fun j -> project_relation initial.(j) tracked.(j));
          genesis =
            Array.init n (fun j -> project_relation initial.(j) tracked.(j));
          indexes }
      in
      for j = 0 to n - 1 do
        rebuild_index t j
      done;
      t

let mode t = t.mode
let strategy t = t.strategy
let tracked t j = if t.mode = Off then [||] else t.tracked.(j)
let answers t j = t.mode <> Off && t.answerable.(j)

let apply t ~source delta =
  if t.mode <> Off then
    Delta.iter
      (fun tup c ->
        let pt = Tuple.project tup t.tracked.(source) in
        Bag.add t.projs.(source) pt c;
        List.iter
          (fun (_, pos, idx) -> index_add idx pt pos c)
          t.indexes.(source))
      delta

(* Lift a projected tuple back to source width: tracked columns carry
   their values, untracked columns become Null placeholders. Safe
   because answerability guarantees no join key, residual, selection or
   projection attribute is untracked — a Null is never consulted and
   never survives the final projection. *)
let lift_one t j pt =
  let full = Array.make t.widths.(j) Value.Null in
  Array.iteri (fun k col -> full.(col) <- pt.(k)) t.tracked.(j);
  full

let lift t j proj =
  let lifted = Delta.empty () in
  Bag.iter (fun pt c -> Bag.add lifted (lift_one t j pt) c) proj;
  lifted

(* The original execution: copy the whole projection, merge the overlay,
   lift, hash-join — O(|projection|) allocation per leg. Kept as the
   Pairwise strategy and the fallback for cross-product junctions. *)
let pairwise_answer t view j ~partial ~overlay =
  let proj = Bag.copy t.projs.(j) in
  Delta.iter
    (fun tup c -> Bag.add proj (Tuple.project tup t.tracked.(j)) c)
    overlay;
  let pj = { Partial.lo = j; hi = j; data = lift t j proj } in
  if j < partial.Partial.lo then Algebra.join view pj partial
  else Algebra.join view partial pj

(* Serve one probe from the projection index plus the (delta-sized)
   overlay, lifting only the matching rows. Counts from the two sides
   accumulate in the caller's result delta exactly as the merged-bag
   path would (cancellations included). *)
let indexed_probe t j ~overlay ~col ~value =
  let rows =
    match List.find_opt (fun (c, _, _) -> c = col) t.indexes.(j) with
    | Some (_, _, idx) -> (
        match Hashtbl.find_opt idx value with
        | None -> []
        | Some bucket ->
            Hashtbl.fold (fun pt c acc -> (lift_one t j pt, c) :: acc) bucket [])
    | None ->
        (* every column an answerable leg probes is a join column, and
           join columns are tracked and indexed in every mode *)
        invalid_arg
          (Printf.sprintf "Aux_store: probe on unindexed column %d of source %d"
             col j)
  in
  let acc = ref rows in
  Delta.iter
    (fun tup c ->
      if Tuple.get tup col = value then
        acc := (lift_one t j (Tuple.project tup t.tracked.(j)), c) :: !acc)
    overlay;
  !acc

let local_answer t ~target ~partial ~overlay =
  if not (answers t target) then None
  else begin
    let view = Option.get t.view in
    let j = target in
    match t.strategy with
    | Join_strategy.Pairwise -> Some (pairwise_answer t view j ~partial ~overlay)
    | Join_strategy.Probe | Join_strategy.Trie -> (
        (* the aux projections are delta-against-projection joins; the
           hash-index probe is the right execution for both the Probe
           and Trie strategies (a trie buys nothing over a point probe
           here, and answers must stay bit-identical across strategies) *)
        match
          Algebra.extend_with_probe view partial ~source:j
            ~probe:(indexed_probe t j ~overlay)
        with
        | Some answer -> Some answer
        | None -> Some (pairwise_answer t view j ~partial ~overlay))
  end

let snapshot t =
  match t.mode with
  | Off -> Snap.Unit
  | _ ->
      Snap.List
        (Array.to_list (Array.map (fun b -> Snap.Delta (Bag.copy b)) t.projs))

let restore t s =
  if t.mode <> Off then begin
    let parts = Snap.to_list s in
    if List.length parts <> Array.length t.projs then
      invalid_arg "Aux_store.restore: source count mismatch";
    List.iteri
      (fun j p ->
        t.projs.(j) <- Bag.copy (Snap.to_delta p);
        rebuild_index t j)
      parts
  end

let reset t =
  Array.iteri
    (fun j g ->
      t.projs.(j) <- Bag.copy g;
      rebuild_index t j)
    t.genesis

let bytes t = String.length (Snap.encode (snapshot t))
