(** The interface every view-maintenance algorithm implements.

    The paper's pseudocode blocks on [RECEIVE]; here each algorithm is an
    event-driven state machine: the warehouse node appends delivered
    updates to the shared {!Update_queue} and invokes [on_update], and
    routes query answers to [on_answer]. Everything an algorithm may do to
    the outside world goes through the capabilities in {!ctx}. *)

open Repro_relational
open Repro_sim
open Repro_protocol

type ctx = {
  engine : Engine.t;
  view : View_def.t;
  trace : Trace.t;
  obs : Repro_observability.Obs.t;
      (** structured spans + histograms (disabled by default; one branch
          per emission when off) *)
  metrics : Metrics.t;
  aux : Aux_store.t;
      (** auxiliary projections for self-maintenance (DESIGN.md §14);
          [Aux_store.off ()] when disabled *)
  queue : Update_queue.t;  (** the UpdateMessageQueue of Fig. 4 *)
  send : int -> Message.to_source -> unit;
      (** transmit to source [i] (metrics-instrumented by the node) *)
  install : Delta.t -> txns:Update_queue.entry list -> unit;
      (** apply a *view-level* delta to the materialized view, recording
          that it incorporates exactly the given update entries *)
  view_contents : unit -> Bag.t;
      (** current materialized view (read-only) — the key-based baselines
          need it for duplicate suppression *)
  fresh_qid : unit -> int;
  source_ok : int -> bool;
      (** circuit-breaker eligibility: false while source [i]'s breaker
          is open (queries to it would only time out). Always true when
          no breaker is wired. *)
  stall_cap : int;
      (** max updates an algorithm may park behind open breakers before
          it must fall back to blocking (bounds degraded-mode memory) *)
}

module type S = sig
  type t

  val name : string
  val create : ctx -> t

  (** A new update entry was just appended to [ctx.queue]. *)
  val on_update : t -> Update_queue.entry -> unit

  (** A non-update message (answer / snapshot) arrived. *)
  val on_answer : t -> Message.to_warehouse -> unit

  (** Source [i]'s circuit breaker opened: park work that needs it (up to
      [ctx.stall_cap]) and keep maintaining updates whose sweep legs
      avoid it. Algorithms without degraded-mode support may ignore
      this — they simply stay blocked until the breaker closes. *)
  val on_source_down : t -> int -> unit

  (** Source [i]'s breaker closed again: replay parked work through the
      normal compensation path. *)
  val on_source_up : t -> int -> unit

  (** No in-flight work (used by drain loops and sanity checks). *)
  val idle : t -> bool

  (** Freeze the algorithm's resumable state for a checkpoint. Must be a
      deep copy: the returned tree may outlive arbitrary further
      mutation of [t]. *)
  val snapshot : t -> Repro_durability.Snap.t

  (** Rebuild from a {!snapshot} against a fresh context (crash
      recovery). [restore ctx (snapshot t)] must behave identically to
      [t] for all future events. *)
  val restore : ctx -> Repro_durability.Snap.t -> t
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

(** Instantiate an algorithm on a context. *)
val instantiate : (module S) -> ctx -> packed

val packed_name : packed -> string
val packed_on_update : packed -> Update_queue.entry -> unit
val packed_on_answer : packed -> Message.to_warehouse -> unit
val packed_on_source_down : packed -> int -> unit
val packed_on_source_up : packed -> int -> unit
val packed_idle : packed -> bool
val packed_snapshot : packed -> Repro_durability.Snap.t

(** Re-instantiate an algorithm from a checkpointed snapshot. *)
val restore_packed : (module S) -> ctx -> Repro_durability.Snap.t -> packed

(** {2 Shared snapshot helpers} — queue entries serialized by value, used
    by every algorithm's [snapshot]/[restore]. *)

val snap_of_entry : Update_queue.entry -> Repro_durability.Snap.t
val entry_of_snap : Repro_durability.Snap.t -> Update_queue.entry

(** {2 Degraded-mode helpers} — shared by the sweep-family engines. *)

(** An update from source [i] sweeps every other source; with circuit
    breakers it may start only while every leg's source is
    [ctx.source_ok] — or locally answerable per [local] (default:
    none). *)
val sweep_eligible :
  ?local:(int -> bool) -> ctx -> Update_queue.entry -> bool

(** Count queued entries parked behind open breakers into
    [metrics.stalled_updates], each once (monotone arrival mark),
    emitting [event] per newly parked entry. Returns
    [(parked_now, new_mark)]. [local] as in {!sweep_eligible}. *)
val note_parked :
  ?local:(int -> bool) ->
  ctx -> stall_mark:int -> event:string -> int * int

(** {2 Self-maintenance helper} — shared by the sweep-family engines
    (DESIGN.md §14). *)

(** [local_answer ctx ~name ?span ~target ~partial ~overlay ()] tries to
    answer the sweep leg against [target] from [ctx.aux]
    ({!Aux_store.local_answer}); on success bumps
    [metrics.local_answers] and emits a trace line and an
    ["<name>.local-answer"] observability event under [span]. *)
val local_answer :
  ctx ->
  name:string ->
  ?span:Repro_observability.Tracer.id ->
  target:int ->
  partial:Partial.t ->
  overlay:Delta.t ->
  unit ->
  Partial.t option
