open Repro_relational
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

let name = "recompute"

type job = {
  entry : Update_queue.entry;
  snapshots : Relation.t option array;
  (* lint: allow L5 derived: job_of_snap recounts the None snapshots at restore *)
  mutable missing : int;
  qid : int;
  (* lint: allow L5 volatile span id: never checkpointed, Tracer.none after restore *)
  mutable span : Tracer.id;
}

type t = { ctx : Algorithm.ctx; mutable current : job option }

let create ctx = { ctx; current = None }

let rec start_next t =
  match t.current with
  | Some _ -> ()
  | None -> (
      match Update_queue.pop t.ctx.queue with
      | None -> ()
      | Some entry ->
          let n = View_def.n_sources t.ctx.view in
          let span =
            if Obs.active t.ctx.obs then
              Obs.span t.ctx.obs "recompute.txn"
                [ ("txn",
                   Tracer.S
                     (Format.asprintf "%a" Message.pp_txn_id
                        entry.update.Message.txn));
                  ("sources", Tracer.I n) ]
            else Tracer.none
          in
          let job =
            { entry; snapshots = Array.make n None; missing = n;
              qid = t.ctx.fresh_qid (); span }
          in
          t.current <- Some job;
          for j = 0 to n - 1 do
            if Obs.active t.ctx.obs then
              Obs.event t.ctx.obs ~span:job.span "fetch"
                [ ("source", Tracer.I j); ("qid", Tracer.I job.qid) ];
            t.ctx.send j (Message.Fetch { qid = job.qid; target = j })
          done)

and finish t job =
  let fetch i =
    match job.snapshots.(i) with Some r -> r | None -> assert false
  in
  let recomputed = Algebra.eval t.ctx.view fetch in
  (* Install the difference between the recomputed view and the current
     contents, so the node's single install path applies. *)
  let current = t.ctx.view_contents () in
  let delta = Delta.of_relation recomputed in
  Bag.diff_into ~into:delta current;
  t.current <- None;
  t.ctx.install delta ~txns:[ job.entry ];
  Obs.finish t.ctx.obs job.span;
  start_next t

let on_update t (_ : Update_queue.entry) = start_next t

let on_answer t msg =
  match (msg, t.current) with
  | Message.Snapshot { qid; source; relation }, Some job when qid = job.qid ->
      (match job.snapshots.(source) with
      | None ->
          job.snapshots.(source) <- Some relation;
          job.missing <- job.missing - 1;
          if Obs.active t.ctx.obs then
            Obs.event t.ctx.obs ~span:job.span "snapshot"
              [ ("source", Tracer.I source);
                ("missing", Tracer.I job.missing) ]
      | Some _ -> invalid_arg "Recompute.on_answer: duplicate snapshot");
      if job.missing = 0 then finish t job
  | Message.Snapshot { qid; _ }, _ ->
      invalid_arg
        (Printf.sprintf "Recompute.on_answer: unexpected snapshot qid=%d" qid)
  | (Message.Answer _ | Message.Eca_answer _ | Message.Update_notice _), _ ->
      invalid_arg "Recompute.on_answer: unexpected message kind"

let on_source_down _ _ = ()
let on_source_up _ _ = ()
let idle t = t.current = None && Update_queue.is_empty t.ctx.queue

module Snap = Repro_durability.Snap

(* Snapshots checkpoint as option deltas (Relation.t has no Snap
   constructor; a relation is a set, i.e. a non-negative delta). *)
let snap_of_job job =
  Snap.List
    [ Algorithm.snap_of_entry job.entry;
      Snap.List
        (Array.to_list job.snapshots
        |> List.map (Snap.option (fun r -> Snap.Delta (Delta.of_relation r))));
      Snap.Int job.qid ]

let job_of_snap s =
  match Snap.to_list s with
  | [ entry; snapshots; qid ] ->
      let snapshots =
        Snap.to_list snapshots
        |> List.map
             (Snap.to_option (fun d ->
                  Relation.of_list (Delta.to_sorted_list (Snap.to_delta d))))
        |> Array.of_list
      in
      let missing =
        Array.fold_left
          (fun acc r -> if r = None then acc + 1 else acc)
          0 snapshots
      in
      { entry = Algorithm.entry_of_snap entry; snapshots; missing;
        qid = Snap.to_int qid; span = Tracer.none }
  | _ -> invalid_arg "Recompute: malformed job snapshot"

let snapshot t = Snap.option snap_of_job t.current
let restore ctx s = { ctx; current = Snap.to_option job_of_snap s }
