open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer
module Snap = Repro_durability.Snap

(* Batched SWEEP: when an update reaches the head of the queue, drain up
   to [batch_max] queued updates, coalesce them into per-source combined
   deltas D_i (net effect via Delta.sum), and run one sweep per distinct
   source — in ascending source order — installing the summed view delta
   as a single transition covering the whole batch.

   Correctness (DESIGN.md §10): by multilinearity of the bag join,

     V(R + D) − V(R) = Σ_i (R+D)_0 ⋈ … ⋈ (R+D)_{i−1} ⋈ D_i ⋈ R_{i+1} ⋈ …

   — term i sees the *new* state of every source left of i and the *old*
   state of every source right of i. Leg i's sweep answers reflect the
   source's live state, which (FIFO channels; every batch delta was
   applied at its source before its notice reached us) is

     R_j + D_j + L_j

   where L_j sums the interfering updates from j still queued behind the
   batch. SWEEP's local error correction subtracts L_j always, and
   additionally D_j when j > i (a right-leg source must contribute its
   old state). The single installed delta is therefore exactly the
   next-|batch| database transition: completely consistent. *)

(* One sweep leg: the ViewChange for combined delta D_src. *)
type leg = {
  src : int;
  mutable dv : Partial.t;
  mutable temp : Partial.t;  (* the partial the outstanding query carried *)
  mutable pending : int list;
  mutable outstanding : int;
  qid : int;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after a crash restore (recovery truncates the span tree) *)
  mutable query_span : Tracer.id;
}

type batch = {
  entries : Update_queue.entry list;  (* delivery order *)
  (* per-source combined deltas for the whole batch, ascending source —
     kept in full (including net-empty sources) because right-leg
     compensation needs D_j for every j *)
  combined : (int * Delta.t) list;
  (* legs still to run: the non-net-empty slice of [combined] *)
  mutable remaining : (int * Delta.t) list;
  mutable acc : Delta.t;  (* Σ finished legs' view deltas *)
  mutable current : leg option;
  (* lint: allow L5 volatile span id, like the legs': Tracer.none after restore *)
  mutable span : Tracer.id;
}

type state = {
  ctx : Algorithm.ctx;
  batch_max : int;
  mutable batch : batch option;
  mutable aborted : int list;
      (* qids of legs aborted by a breaker trip: late answers dropped *)
  mutable stall_mark : int;
      (* highest arrival number already counted in [stalled_updates] *)
}

let combined_deltas entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Update_queue.entry) ->
      let i = e.update.Message.txn.source in
      let d =
        match Hashtbl.find_opt tbl i with
        | Some d -> d
        | None ->
            let d = Delta.empty () in
            Hashtbl.replace tbl i d;
            d
      in
      Bag.merge_into ~into:d e.update.Message.delta)
    entries;
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

module Make (Cfg : sig
  val batch_max : int
end) =
struct
  type t = state

  let name =
    if Cfg.batch_max = 16 then "sweep-batched"
    else Printf.sprintf "sweep-batched(k=%d)" Cfg.batch_max

  let create ctx =
    if Cfg.batch_max < 1 then
      invalid_arg "Sweep_batched: batch_max must be >= 1";
    { ctx; batch_max = Cfg.batch_max; batch = None; aborted = [];
      stall_mark = -1 }

  let trace t fmt =
    Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
      ~who:"warehouse" fmt

  let local t j = Aux_store.answers t.ctx.Algorithm.aux j

  (* What a leg [j] of the leg for source [src] must reflect beyond the
     installed state the aux projection holds: a left-leg source
     (j < src) contributes its new state R_j + D_j — overlay the batch's
     combined delta; a right-leg source (j > src) its old state R_j —
     no overlay. (The remote path reaches the same states by subtracting
     L_j, and additionally D_j when j > src, from the live answer.) *)
  let leg_overlay b ~src j =
    if j < src then
      match List.assoc_opt j b.combined with
      | Some d -> d
      | None -> Delta.empty ()
    else Delta.empty ()

  let rec advance t =
    match t.batch with
    | None -> ()
    | Some b -> (
        match b.current with
        | Some leg -> advance_leg t b leg
        | None -> (
            match b.remaining with
            | (src, delta) :: rest ->
                b.remaining <- rest;
                let dv = Partial.of_source_delta t.ctx.view src delta in
                let n = View_def.n_sources t.ctx.view in
                let leg =
                  { src; dv; temp = dv;
                    pending = Sweep_order.order ~n ~i:src; outstanding = -1;
                    qid = t.ctx.fresh_qid (); span = Tracer.none;
                    query_span = Tracer.none }
                in
                if Obs.active t.ctx.obs then
                  leg.span <-
                    Obs.span t.ctx.obs ~parent:b.span "leg"
                      [ ("source", Tracer.I src); ("qid", Tracer.I leg.qid) ];
                b.current <- Some leg;
                advance_leg t b leg
            | [] -> install t b))

  and advance_leg t b leg =
    match leg.pending with
    | j :: rest -> (
        match
          if local t j then
            Algorithm.local_answer t.ctx ~name ~span:leg.span ~target:j
              ~partial:leg.dv ~overlay:(leg_overlay b ~src:leg.src j) ()
          else None
        with
        | Some dv ->
            leg.pending <- rest;
            leg.dv <- dv;
            advance_leg t b leg
        | None ->
            leg.pending <- rest;
            leg.outstanding <- j;
            leg.temp <- leg.dv;
            leg.query_span <-
              (if Obs.active t.ctx.obs then
                 Obs.span t.ctx.obs ~parent:leg.span "query"
                   [ ("source", Tracer.I j); ("qid", Tracer.I leg.qid) ]
               else Tracer.none);
            t.ctx.send j
              (Message.Sweep_query
                 { qid = leg.qid; target = j; partial = Partial.copy leg.dv }))
    | [] ->
        let view_delta = Algebra.select_project t.ctx.view leg.dv in
        trace t "%s: leg for source %d yields %a" name leg.src Delta.pp
          view_delta;
        Bag.merge_into ~into:b.acc view_delta;
        Obs.finish t.ctx.obs leg.span;
        b.current <- None;
        advance t

  and install t b =
    trace t "%s: install batch of %d update(s): %a" name
      (List.length b.entries) Delta.pp b.acc;
    t.batch <- None;
    t.ctx.install b.acc ~txns:b.entries;
    Obs.finish t.ctx.obs b.span;
    start_next t

  (* Drain up to [batch_max] queued updates and start the batch — only
     breaker-eligible ones while degraded (parked entries stay in the
     queue, visible to the L_j interference term; at the stall cap the
     engine falls back to blocking on the dead source). *)
  and start_next t =
    match t.batch with
    | Some _ -> ()
    | None -> (
        let parked, mark =
          Algorithm.note_parked ~local:(local t) t.ctx
            ~stall_mark:t.stall_mark ~event:(name ^ ".park")
        in
        t.stall_mark <- mark;
        let drained =
          if parked = 0 || parked >= t.ctx.Algorithm.stall_cap then
            Update_queue.take t.ctx.queue ~max:t.batch_max
          else
            Update_queue.take_eligible t.ctx.queue ~max:t.batch_max
              ~eligible:(Algorithm.sweep_eligible ~local:(local t) t.ctx)
        in
        match drained with
        | [] -> ()
        | entries ->
            let combined = combined_deltas entries in
            let remaining =
              List.filter (fun (_, d) -> not (Delta.is_empty d)) combined
            in
            let size = List.length entries in
            Metrics.note_batch t.ctx.metrics size;
            trace t "%s: batch of %d update(s) over %d source leg(s)" name
              size (List.length remaining);
            let span =
              if Obs.active t.ctx.obs then
                Obs.span t.ctx.obs (name ^ ".batch")
                  [ ("updates", Tracer.I size);
                    ("legs", Tracer.I (List.length remaining)) ]
              else Tracer.none
            in
            Obs.observe t.ctx.obs "batch_size" (float_of_int size);
            t.batch <-
              Some
                { entries; combined; remaining; acc = Delta.empty ();
                  current = None; span };
            advance t)

  let on_update t (_ : Update_queue.entry) = start_next t

  let on_answer t msg =
    match (msg, t.batch) with
    | Message.Answer { qid; source; _ }, _ when List.mem qid t.aborted ->
        (* late answer for a breaker-aborted leg (the stale query doubled
           as the recovery probe); the batch was pushed back and re-runs
           with fresh qids *)
        t.aborted <- List.filter (fun q -> q <> qid) t.aborted;
        trace t "%s: dropped answer for aborted qid=%d from %d" name qid
          source;
        start_next t
    | Message.Answer { qid; source = j; partial }, Some b -> (
        match b.current with
        | Some leg when qid = leg.qid && j = leg.outstanding ->
            leg.outstanding <- -1;
            Obs.finish t.ctx.obs leg.query_span;
            leg.query_span <- Tracer.none;
            (* On-line error correction against the combined deltas: the
               answer reflects R_j + D_j + L_j. A left-leg source (j <
               src) must contribute its new state R_j + D_j — subtract
               L_j; a right-leg source (j > src) its old state R_j —
               subtract D_j + L_j. L_j is, by the FIFO argument of §4,
               exactly the queued updates from j. *)
            let queued = Update_queue.from_source t.ctx.queue j in
            let interfering =
              Delta.sum
                ((if j > leg.src then
                    match List.assoc_opt j b.combined with
                    | Some d -> [ d ]
                    | None -> []
                  else [])
                @ List.map
                    (fun (e : Update_queue.entry) -> e.update.Message.delta)
                    queued)
            in
            if Delta.is_empty interfering then leg.dv <- partial
            else begin
              t.ctx.metrics.Metrics.compensations <-
                t.ctx.metrics.Metrics.compensations + 1;
              trace t
                "%s: compensate answer from %d (%d queued, batch delta %s)"
                name j (List.length queued)
                (if j > leg.src then "included" else "not included");
              if Obs.active t.ctx.obs then
                Obs.event t.ctx.obs ~span:leg.span "compensate"
                  [ ("source", Tracer.I j);
                    ("interfering", Tracer.I (List.length queued)) ];
              leg.dv <-
                Algebra.compensate t.ctx.view ~answer:partial ~interfering
                  ~temp:leg.temp
            end;
            advance t
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf "%s: unexpected answer qid=%d from %d" name qid
                 j))
    | Message.Answer { qid; source; _ }, None ->
        invalid_arg
          (Printf.sprintf "%s: unexpected answer qid=%d from %d" name qid
             source)
    | (Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _), _
      ->
        invalid_arg (name ^ ": unexpected message kind")

  (* Does any not-yet-finished work of batch [b] query source [j]? Every
     leg for a source ≠ [j] sweeps [j]; the [j]-leg itself does not —
     and no leg does when [j] is locally answerable. *)
  let batch_needs t b j =
    (match b.current with
    | Some leg ->
        leg.outstanding = j || (List.mem j leg.pending && not (local t j))
    | None -> false)
    || ((not (local t j)) && List.exists (fun (src, _) -> src <> j) b.remaining)

  (* Source [j]'s breaker opened. If the batch still has a leg through
     [j], abort the whole batch: discard the accumulated view delta,
     return every batch entry to the head of the queue (delivery order,
     arrival numbers intact) and remember the in-flight qid so its late
     answer is dropped. Nothing was installed, so the re-run (as one or
     more smaller eligible batches) recomputes from scratch. *)
  let on_source_down t j =
    (match t.batch with
    | Some b when batch_needs t b j ->
        (match b.current with
        | Some leg when leg.outstanding >= 0 ->
            t.aborted <- leg.qid :: t.aborted;
            Obs.finish t.ctx.obs leg.query_span;
            Obs.finish t.ctx.obs leg.span
        | Some leg -> Obs.finish t.ctx.obs leg.span
        | None -> ());
        List.iter
          (fun e -> Update_queue.push_front t.ctx.queue e)
          (List.rev b.entries);
        t.batch <- None;
        trace t "%s: abort batch of %d update(s) — source %d tripped" name
          (List.length b.entries) j;
        if Obs.active t.ctx.obs then
          Obs.event t.ctx.obs ~span:b.span (name ^ ".abort")
            [ ("source", Tracer.I j);
              ("updates", Tracer.I (List.length b.entries)) ];
        Obs.finish t.ctx.obs b.span
    | _ -> ());
    start_next t

  (* Source [j] healed: parked entries are eligible again. *)
  let on_source_up t _j = start_next t

  let idle t = t.batch = None && Update_queue.is_empty t.ctx.queue

  let snap_of_leg leg =
    Snap.List
      [ Snap.Int leg.src; Snap.Partial (Partial.copy leg.dv);
        Snap.Partial (Partial.copy leg.temp); Snap.ints leg.pending;
        Snap.Int leg.outstanding; Snap.Int leg.qid ]

  let leg_of_snap s =
    match Snap.to_list s with
    | [ src; dv; temp; pending; outstanding; qid ] ->
        { src = Snap.to_int src; dv = Snap.to_partial dv;
          temp = Snap.to_partial temp; pending = Snap.to_ints pending;
          outstanding = Snap.to_int outstanding; qid = Snap.to_int qid;
          span = Tracer.none; query_span = Tracer.none }
    | _ -> invalid_arg (name ^ ": malformed leg snapshot")

  let snap_of_deltas l =
    Snap.List
      (List.map
         (fun (i, d) -> Snap.List [ Snap.Int i; Snap.Delta (Delta.copy d) ])
         l)

  let deltas_of_snap s =
    List.map
      (fun p ->
        match Snap.to_list p with
        | [ i; d ] -> (Snap.to_int i, Snap.to_delta d)
        | _ -> invalid_arg (name ^ ": malformed per-source delta snapshot"))
      (Snap.to_list s)

  let snap_of_batch b =
    Snap.List
      [ Snap.List (List.map Algorithm.snap_of_entry b.entries);
        snap_of_deltas b.combined; snap_of_deltas b.remaining;
        Snap.Delta (Delta.copy b.acc); Snap.option snap_of_leg b.current ]

  let batch_of_snap s =
    match Snap.to_list s with
    | [ entries; combined; remaining; acc; current ] ->
        { entries = List.map Algorithm.entry_of_snap (Snap.to_list entries);
          combined = deltas_of_snap combined;
          remaining = deltas_of_snap remaining; acc = Snap.to_delta acc;
          current = Snap.to_option leg_of_snap current; span = Tracer.none }
    | _ -> invalid_arg (name ^ ": malformed batch snapshot")

  let snapshot t =
    Snap.List
      [ Snap.option snap_of_batch t.batch; Snap.ints t.aborted;
        Snap.Int t.stall_mark ]

  let restore ctx s =
    match Snap.to_list s with
    | [ batch; aborted; stall_mark ] ->
        { ctx; batch_max = Cfg.batch_max;
          batch = Snap.to_option batch_of_snap batch;
          aborted = Snap.to_ints aborted; stall_mark = Snap.to_int stall_mark }
    | _ -> invalid_arg (name ^ ": malformed snapshot")
end

module Default = Make (struct
  let batch_max = 16
end)

include Default

let with_batch_max k : (module Algorithm.S) =
  (module Make (struct
    let batch_max = k
  end))
