open Repro_sim
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer
module Snap = Repro_durability.Snap

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  k : int;
  probe_after : float;
  probe_backoff : float;
  max_probe_after : float;
  probe_jitter : float;
  probe_limit : int;
}

let default_config =
  { k = 3; probe_after = 32.0; probe_backoff = 2.0; max_probe_after = 256.0;
    probe_jitter = 0.1; probe_limit = 0 }

type source = {
  mutable state : state;
  mutable failures : int;  (* consecutive timeouts while Closed *)
  mutable probes : int;  (* probes issued since this breaker opened *)
  mutable cur_delay : float;  (* next open → half-open delay *)
  mutable abandoned : bool;  (* probe budget exhausted: open for good *)
  (* lint: allow L5 volatile: stamps pending probe timers; restore bumps it to orphan them and re-schedules fresh probes *)
  mutable probe_epoch : int;
}

type decision = Retry | Tripped

type t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  obs : Obs.t;
  metrics : Metrics.t;
  sources : source array;
  (* lint: allow L5 derived: count of not-Closed sources, rebuilt by restore while replaying per-source states *)
  mutable not_closed : int;
  (* lint: allow L5 derived: degraded-interval start, re-opened by restore when any restored breaker is not Closed *)
  mutable degraded_since : float;  (* < 0. ⇒ not currently degraded *)
  (* lint: allow L5 volatile: harness callback, rewired after create/restore *)
  mutable on_open : int -> unit;
  (* lint: allow L5 volatile: harness callback, rewired after create/restore *)
  mutable on_probe : int -> unit;
  (* lint: allow L5 volatile: harness callback, rewired after create/restore *)
  mutable on_close : int -> unit;
}

let fresh_source () =
  { state = Closed; failures = 0; probes = 0; cur_delay = 0.;
    abandoned = false; probe_epoch = 0 }

let create ?(config = default_config) ?(obs = Obs.disabled ()) engine ~rng
    ~metrics ~n =
  if config.k < 1 then invalid_arg "Breaker.create: k < 1";
  if config.probe_after <= 0. || config.probe_backoff < 1.
     || config.max_probe_after < config.probe_after
  then invalid_arg "Breaker.create: bad probe schedule";
  if config.probe_jitter < 0. then invalid_arg "Breaker.create: jitter < 0";
  if config.probe_limit < 0 then invalid_arg "Breaker.create: probe_limit < 0";
  if n < 1 then invalid_arg "Breaker.create: n < 1";
  { engine; rng; config; obs; metrics;
    sources = Array.init n (fun _ -> fresh_source ());
    not_closed = 0; degraded_since = -1.;
    on_open = (fun _ -> ()); on_probe = (fun _ -> ());
    on_close = (fun _ -> ()) }

let set_on_open t f = t.on_open <- f
let set_on_probe t f = t.on_probe <- f
let set_on_close t f = t.on_close <- f

let n_sources t = Array.length t.sources
let state t i = t.sources.(i).state
let source_ok t i = t.sources.(i).state = Closed
let degraded t = t.not_closed > 0
let abandoned t i = t.sources.(i).abandoned
let any_abandoned t = Array.exists (fun s -> s.abandoned) t.sources

(* degraded_time accounting: one interval per contiguous stretch with at
   least one non-Closed source. *)
let begin_degraded t =
  if t.degraded_since < 0. then t.degraded_since <- Engine.now t.engine

let end_degraded t =
  if t.degraded_since >= 0. then begin
    t.metrics.Metrics.degraded_time <-
      t.metrics.Metrics.degraded_time
      +. (Engine.now t.engine -. t.degraded_since);
    t.degraded_since <- -1.
  end

(* Close out a still-open degraded interval (end of run / crash halt)
   without changing breaker state. *)
let flush t = if t.not_closed > 0 then begin end_degraded t; begin_degraded t end

let transition t i next =
  let s = t.sources.(i) in
  let prev = s.state in
  if prev <> next then begin
    if prev = Closed then begin
      t.not_closed <- t.not_closed + 1;
      if t.not_closed = 1 then begin_degraded t
    end;
    if next = Closed then begin
      t.not_closed <- t.not_closed - 1;
      if t.not_closed = 0 then end_degraded t
    end;
    s.state <- next;
    if Obs.active t.obs then
      Obs.event t.obs "breaker.transition"
        [ ("source", Tracer.I i); ("from", Tracer.S (state_name prev));
          ("to", Tracer.S (state_name next)) ]
  end

let rec schedule_probe t i =
  let s = t.sources.(i) in
  s.probe_epoch <- s.probe_epoch + 1;
  let epoch = s.probe_epoch in
  let delay =
    s.cur_delay *. (1. +. (t.config.probe_jitter *. Rng.float t.rng))
  in
  Engine.schedule t.engine ~delay (fun () ->
      if epoch = s.probe_epoch && s.state = Open && not s.abandoned then
        if t.config.probe_limit > 0 && s.probes >= t.config.probe_limit then begin
          (* probe budget spent: this source is written off; the run can
             drain with the breaker permanently open (Degraded verdict) *)
          s.abandoned <- true;
          if Obs.active t.obs then
            Obs.event t.obs "breaker.abandon"
              [ ("source", Tracer.I i); ("probes", Tracer.I s.probes) ]
        end
        else begin
          s.probes <- s.probes + 1;
          transition t i Half_open;
          if Obs.active t.obs then
            Obs.event t.obs "breaker.probe"
              [ ("source", Tracer.I i); ("attempt", Tracer.I s.probes) ];
          t.on_probe i
        end)

and trip t i =
  let s = t.sources.(i) in
  s.failures <- 0;
  t.metrics.Metrics.breaker_trips <- t.metrics.Metrics.breaker_trips + 1;
  transition t i Open;
  s.cur_delay <-
    (if s.cur_delay <= 0. then t.config.probe_after
     else
       Float.min (s.cur_delay *. t.config.probe_backoff)
         t.config.max_probe_after);
  schedule_probe t i;
  t.on_open i

(* A query deadline expired on the link to source [i]. Below [k]
   consecutive expiries the caller should resume the sender immediately
   (bounded retry); at [k] the breaker opens. A Half_open expiry is a
   failed probe: re-open with backoff. *)
let record_timeout t i =
  let s = t.sources.(i) in
  t.metrics.Metrics.query_timeouts <- t.metrics.Metrics.query_timeouts + 1;
  match s.state with
  | Closed ->
      s.failures <- s.failures + 1;
      if s.failures >= t.config.k then begin trip t i; Tripped end
      else Retry
  | Half_open -> trip t i; Tripped
  | Open ->
      (* a late expiry from an orphaned sender epoch; the breaker is
         already open *)
      Tripped

(* Evidence source [i] is answering (an answer or snapshot arrived).
   Closes a Half_open (successful probe) — or an Open breaker outright,
   when a late answer from before the trip proves the source lives. *)
let record_success t i =
  let s = t.sources.(i) in
  s.failures <- 0;
  match s.state with
  | Closed -> ()
  | Half_open | Open ->
      s.probes <- 0;
      s.cur_delay <- 0.;
      s.abandoned <- false;
      s.probe_epoch <- s.probe_epoch + 1;
      transition t i Closed;
      t.on_close i

(* Force an immediate open (used by tests). *)
let force_open t i = if t.sources.(i).state = Closed then trip t i

(* ————— crash-recovery hooks ————— *)

(* The owning warehouse crashed: orphan probe timers and close the
   degraded interval (the restored incarnation re-opens it). Breaker
   state itself is checkpointed/restored like any other warehouse
   state. *)
let halt t =
  Array.iter (fun s -> s.probe_epoch <- s.probe_epoch + 1) t.sources;
  if t.degraded_since >= 0. then end_degraded t

(* Genesis recovery (no checkpoint): everything back to Closed. *)
let reset t =
  if t.degraded_since >= 0. then end_degraded t;
  t.not_closed <- 0;
  Array.iter
    (fun s ->
      s.state <- Closed;
      s.failures <- 0;
      s.probes <- 0;
      s.cur_delay <- 0.;
      s.abandoned <- false;
      s.probe_epoch <- s.probe_epoch + 1)
    t.sources

let snapshot t =
  Snap.List
    (Array.to_list t.sources
    |> List.map (fun s ->
           Snap.List
             [ Snap.Int
                 (match s.state with
                 | Closed -> 0
                 | Open -> 1
                 | Half_open -> 2);
               Snap.Int s.failures; Snap.Int s.probes;
               Snap.Float s.cur_delay; Snap.Bool s.abandoned ]))

let restore t snap =
  let sources =
    match snap with
    | Snap.List l -> l
    | _ -> invalid_arg "Breaker.restore: malformed snapshot"
  in
  if List.length sources <> Array.length t.sources then
    invalid_arg "Breaker.restore: source count mismatch";
  (* rewind accounting, then replay transitions from the snapshot *)
  if t.degraded_since >= 0. then end_degraded t;
  t.not_closed <- 0;
  List.iteri
    (fun i snap_s ->
      let s = t.sources.(i) in
      (match Snap.to_list snap_s with
      | [ st; failures; probes; cur_delay; abandoned ] ->
          s.state <-
            (match Snap.to_int st with
            | 0 -> Closed
            | 1 -> Open
            | 2 -> Half_open
            | _ -> invalid_arg "Breaker.restore: bad state");
          s.failures <- Snap.to_int failures;
          s.probes <- Snap.to_int probes;
          s.cur_delay <- Snap.to_float cur_delay;
          s.abandoned <- Snap.to_bool abandoned
      | _ -> invalid_arg "Breaker.restore: malformed source");
      s.probe_epoch <- s.probe_epoch + 1;
      (* a checkpointed Half_open probe was answered (or not) by the old
         incarnation; the new one re-probes from Open *)
      if s.state = Half_open then s.state <- Open;
      if s.state <> Closed then begin
        t.not_closed <- t.not_closed + 1;
        if t.not_closed = 1 then begin_degraded t;
        if not s.abandoned then begin
          if s.cur_delay <= 0. then s.cur_delay <- t.config.probe_after;
          schedule_probe t i
        end
      end)
    sources
