open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_durability
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

type install_record = {
  at : float;
  txns : Message.txn_id list;
  view_after : Bag.t;
  negative : bool;
}

type t = {
  engine : Engine.t;
  view : View_def.t;
  algorithm : (module Algorithm.S);
  send : int -> Message.to_source -> unit;
  data : Bag.t;
  initial : Bag.t;
  metrics : Metrics.t;
  queue : Update_queue.t;
  record_history : bool;
  trace : Trace.t;
  obs : Obs.t;
  store : Store.t option;
  breaker : Breaker.t option;
  aux : Aux_store.t;
  stall_cap : int;
  mutable next_qid : int;
  mutable replaying : bool;
  (* Installs regenerated during replay, FIFO; each [Installed] WAL record
     pops one and must match it — the exactly-once re-application check. *)
  replay_installs : Delta.t Queue.t;
  mutable algo : Algorithm.packed option;
  mutable rev_installs : install_record list;
  mutable rev_deliveries : Message.update list;
  mutable rev_listeners : (Delta.t -> unit) list;  (* newest first *)
  mutable rev_incorporate_listeners : (int -> unit) list;
  mutable rev_delivery_listeners : (Message.update -> unit) list;
  mutable rev_install_txn_listeners : (Message.txn_id list -> unit) list;
}

let algo t = Option.get t.algo

(* The capabilities handed to the algorithm. Everything observable from
   outside the node — metrics, history, WAL, listeners — is suppressed
   while [t.replaying]: replay only rebuilds internal state the crash
   destroyed; its effects already happened (and were logged) before the
   crash. Sends are NOT suppressed: replayed queries go out with their
   original transport sequence numbers (the sender counter is restored
   from the checkpoint), so peers drop them as duplicates and re-ack. *)
let wire t =
  let instrumented_send i msg =
    if not t.replaying then begin
      t.metrics.Metrics.queries_sent <- t.metrics.Metrics.queries_sent + 1;
      t.metrics.Metrics.query_weight <-
        t.metrics.Metrics.query_weight + Message.weight_to_source msg;
      Trace.emit t.trace ~time:(Engine.now t.engine) ~who:"warehouse" "send %a"
        Message.pp_to_source msg;
      if Obs.active t.obs then
        Obs.observe t.obs "query_weight"
          (float_of_int (Message.weight_to_source msg))
    end;
    t.send i msg
  in
  (* The aux projections advance exactly when updates are installed —
     also during replay, which rebuilds them from the same delta stream
     the crash destroyed. *)
  let apply_aux txns =
    List.iter
      (fun (e : Update_queue.entry) ->
        Aux_store.apply t.aux ~source:e.update.Message.txn.Message.source
          e.update.Message.delta)
      txns
  in
  let install delta ~txns =
    if t.replaying then begin
      Bag.merge_into ~into:t.data delta;
      apply_aux txns;
      Queue.push (Delta.copy delta) t.replay_installs
    end
    else begin
      (match t.store with
      | Some store ->
          Store.log store
            (Wal.Installed
               { delta;
                 txns =
                   List.map
                     (fun e -> e.Update_queue.update.Message.txn)
                     txns })
      | None -> ());
      let negative =
        Delta.fold
          (fun tup c neg -> neg || Bag.count t.data tup + c < 0)
          delta false
      in
      Bag.merge_into ~into:t.data delta;
      apply_aux txns;
      t.metrics.Metrics.installs <- t.metrics.Metrics.installs + 1;
      t.metrics.Metrics.updates_incorporated <-
        t.metrics.Metrics.updates_incorporated + List.length txns;
      if negative then
        t.metrics.Metrics.negative_installs <-
          t.metrics.Metrics.negative_installs + 1;
      let now = Engine.now t.engine in
      List.iter
        (fun e ->
          Metrics.note_staleness t.metrics (now -. e.Update_queue.arrived_at);
          if Obs.active t.obs then
            Obs.observe t.obs "staleness" (now -. e.Update_queue.arrived_at))
        txns;
      if Obs.active t.obs then
        Obs.event t.obs "install"
          [ ("txns", Tracer.I (List.length txns));
            ("weight", Tracer.I (Delta.weight delta));
            ("negative", Tracer.B negative) ];
      if t.record_history then
        t.rev_installs <-
          { at = now;
            txns = List.map (fun e -> e.Update_queue.update.Message.txn) txns;
            view_after = Bag.copy t.data; negative }
          :: t.rev_installs;
      List.iter (fun f -> f delta) (List.rev t.rev_listeners);
      List.iter
        (fun f -> f (List.length txns))
        (List.rev t.rev_incorporate_listeners);
      (match t.rev_install_txn_listeners with
      | [] -> ()
      | ls ->
          let ids =
            List.map (fun e -> e.Update_queue.update.Message.txn) txns
          in
          List.iter (fun f -> f ids) (List.rev ls))
    end
  in
  { Algorithm.engine = t.engine; view = t.view; trace = t.trace; obs = t.obs;
    metrics = t.metrics; aux = t.aux; queue = t.queue;
    send = instrumented_send; install;
    view_contents = (fun () -> t.data);
    fresh_qid =
      (fun () ->
        t.next_qid <- t.next_qid + 1;
        t.next_qid);
    source_ok =
      (match t.breaker with
      | None -> fun _ -> true
      | Some b -> fun i -> Breaker.source_ok b i);
    stall_cap = t.stall_cap }

(* Breaker transitions drive the algorithm's park/replay hooks. Re-wired
   after every (re)instantiation so the closures capture the live
   algorithm. *)
let wire_breaker t =
  match t.breaker with
  | None -> ()
  | Some b ->
      Breaker.set_on_open b (fun i ->
          Algorithm.packed_on_source_down (algo t) i);
      Breaker.set_on_close b (fun i ->
          Algorithm.packed_on_source_up (algo t) i)

let create engine ~view ~algorithm ~send ~init ?durability ?metrics
    ?queue_capacity ?breaker ?(aux = Aux_store.off ()) ?(stall_cap = 256)
    ?(record_history = true) ?(trace = Trace.create ())
    ?(obs = Obs.disabled ()) () =
  let data = Bag.copy (Relation.as_bag init) in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let t =
    { engine; view; algorithm; send; data; initial = Bag.copy data; metrics;
      queue = Update_queue.create ?capacity:queue_capacity ();
      record_history; trace; obs; store = durability; breaker; aux; stall_cap;
      next_qid = 0; replaying = false; replay_installs = Queue.create ();
      algo = None; rev_installs = []; rev_deliveries = []; rev_listeners = [];
      rev_incorporate_listeners = []; rev_delivery_listeners = [];
      rev_install_txn_listeners = [] }
  in
  t.algo <- Some (Algorithm.instantiate algorithm (wire t));
  wire_breaker t;
  t

(* Restart after a crash: volatile state (view, queue, algorithm, qid
   counter) comes from the checkpoint — or from genesis when none was
   taken — while durable artifacts survive from the previous incarnation:
   the store, the metrics, the recorded histories (everything in them
   really happened and was WAL-logged) and the registered listeners. The
   caller replays the WAL tail afterwards via {!begin_replay} /
   {!replay_record} / {!end_replay}. *)
let recover ~prev ?checkpoint () =
  if Option.is_none prev.store then
    invalid_arg "Node.recover: node has no store";
  let data, queue, next_qid =
    match checkpoint with
    | Some (c : Checkpoint.t) ->
        let entries =
          List.map
            (fun (q : Checkpoint.queued) ->
              { Update_queue.update = q.update; arrival = q.arrival;
                arrived_at = q.arrived_at })
            c.queue
        in
        ( Bag.copy c.view,
          Update_queue.of_entries
            ?capacity:(Update_queue.capacity prev.queue)
            entries ~next_arrival:c.queue_next_arrival,
          c.next_qid )
    | None ->
        ( Bag.copy prev.initial,
          Update_queue.create ?capacity:(Update_queue.capacity prev.queue) (),
          0 )
  in
  let t =
    { prev with data; queue; next_qid; replaying = false;
      replay_installs = Queue.create (); algo = None }
  in
  (t.algo <-
     Some
       (match checkpoint with
       | Some c -> Algorithm.restore_packed t.algorithm (wire t) c.algo
       | None -> Algorithm.instantiate t.algorithm (wire t)));
  (match t.breaker with
  | None -> ()
  | Some b -> (
      match checkpoint with
      | Some (c : Checkpoint.t) when c.breaker <> Snap.Unit ->
          Breaker.restore b c.breaker
      | _ -> Breaker.reset b));
  (match checkpoint with
  | Some (c : Checkpoint.t) when c.aux <> Snap.Unit ->
      Aux_store.restore t.aux c.aux
  | _ -> Aux_store.reset t.aux);
  wire_breaker t;
  t

let handle_update t update ~arrived_at =
  if not t.replaying then begin
    t.metrics.Metrics.updates_received <-
      t.metrics.Metrics.updates_received + 1;
    t.metrics.Metrics.notice_weight <-
      t.metrics.Metrics.notice_weight + Delta.weight update.Message.delta;
    t.rev_deliveries <- update :: t.rev_deliveries;
    List.iter (fun f -> f update) (List.rev t.rev_delivery_listeners)
  end;
  let entry = Update_queue.append t.queue update ~arrived_at in
  if not t.replaying then begin
    Metrics.note_queue_length t.metrics (Update_queue.length t.queue);
    if Obs.active t.obs then begin
      Obs.observe t.obs "queue_length"
        (float_of_int (Update_queue.length t.queue));
      Obs.event t.obs "update.delivered"
        [ ("txn", Tracer.S (Format.asprintf "%a" Message.pp_txn_id
                              update.Message.txn));
          ("weight", Tracer.I (Delta.weight update.Message.delta)) ]
    end
  end;
  Algorithm.packed_on_update (algo t) entry

let handle_answer t msg =
  if not t.replaying then begin
    t.metrics.Metrics.answers_received <-
      t.metrics.Metrics.answers_received + 1;
    t.metrics.Metrics.answer_weight <-
      t.metrics.Metrics.answer_weight + Message.weight_to_warehouse msg;
    if Obs.active t.obs then
      Obs.observe t.obs "answer_weight"
        (float_of_int (Message.weight_to_warehouse msg));
    match msg with
    | Message.Snapshot _ ->
        t.metrics.Metrics.snapshots_fetched <-
          t.metrics.Metrics.snapshots_fetched + 1
    | _ -> ()
  end;
  (* delivery evidence for the breaker — also during replay, so a
     post-checkpoint heal the old incarnation saw is reconverged *)
  (match (t.breaker, msg) with
  | Some b, (Message.Answer { source; _ } | Message.Snapshot { source; _ }) ->
      Breaker.record_success b source
  | _ -> ());
  Algorithm.packed_on_answer (algo t) msg

let deliver t msg =
  if t.replaying then invalid_arg "Node.deliver: node is replaying";
  (* Log before processing (and the transport acks only after deliver
     returns): everything acknowledged is on the log. *)
  (match t.store with
  | Some store ->
      let record =
        match msg with
        | Message.Update_notice update ->
            Wal.Update_received { update; arrived_at = Engine.now t.engine }
        | Message.Answer { source; _ } | Message.Snapshot { source; _ } ->
            Wal.Answer_received { link = source; msg }
        | Message.Eca_answer _ -> Wal.Answer_received { link = 0; msg }
      in
      Store.log store record
  | None -> ());
  (match msg with
  | Message.Update_notice update ->
      handle_update t update ~arrived_at:(Engine.now t.engine)
  | Message.Answer _ | Message.Snapshot _ | Message.Eca_answer _ ->
      handle_answer t msg);
  (* A consistent point: the delivery is fully processed. *)
  match t.store with Some store -> Store.maybe_checkpoint store | None -> ()

(* ————— WAL replay ————— *)

let begin_replay t =
  Queue.clear t.replay_installs;
  Obs.mute t.obs;
  t.replaying <- true

let replay_record t record =
  if not t.replaying then invalid_arg "Node.replay_record: not replaying";
  match record with
  | Wal.Update_received { update; arrived_at } ->
      handle_update t update ~arrived_at
  | Wal.Answer_received { msg; _ } -> handle_answer t msg
  | Wal.Installed { delta; _ } -> (
      match Queue.take_opt t.replay_installs with
      | Some d when Delta.equal d delta -> ()
      | Some _ ->
          invalid_arg
            "Node.replay_record: replayed install diverges from logged install"
      | None ->
          invalid_arg "Node.replay_record: logged install was not regenerated")

let end_replay t =
  if not (Queue.is_empty t.replay_installs) then
    invalid_arg "Node.end_replay: replay produced unlogged installs";
  Obs.unmute t.obs;
  t.replaying <- false

(* ————— checkpoint capture ————— *)

let checkpoint t ~wal_pos ~recv_expected ~senders : Checkpoint.t =
  { taken_at = Engine.now t.engine; wal_pos; view = Bag.copy t.data;
    queue =
      List.map
        (fun (e : Update_queue.entry) ->
          { Checkpoint.update = e.update; arrival = e.arrival;
            arrived_at = e.arrived_at })
        (Update_queue.entries t.queue);
    queue_next_arrival = Update_queue.last_arrival t.queue + 1;
    next_qid = t.next_qid; algo = Algorithm.packed_snapshot (algo t);
    recv_expected; senders;
    breaker =
      (match t.breaker with
      | Some b -> Breaker.snapshot b
      | None -> Snap.Unit);
    aux = Aux_store.snapshot t.aux }

(* prepend (O(1) per registration); install reverses so listeners still
   fire in registration order *)
let add_install_listener t f = t.rev_listeners <- f :: t.rev_listeners

let add_incorporate_listener t f =
  t.rev_incorporate_listeners <- f :: t.rev_incorporate_listeners

let add_delivery_listener t f =
  t.rev_delivery_listeners <- f :: t.rev_delivery_listeners

let add_install_txns_listener t f =
  t.rev_install_txn_listeners <- f :: t.rev_install_txn_listeners

let view_contents t = t.data
let obs t = t.obs
let metrics t = t.metrics
let queue t = t.queue
let breaker t = t.breaker
let aux t = t.aux

let degraded t =
  match t.breaker with Some b -> Breaker.degraded b | None -> false
let algorithm_name t = Algorithm.packed_name (algo t)
let installs t = List.rev t.rev_installs
let deliveries t = List.rev t.rev_deliveries
let initial_view t = t.initial
let idle t = Algorithm.packed_idle (algo t)
