open Repro_relational
open Repro_sim
open Repro_protocol

type install_record = {
  at : float;
  txns : Message.txn_id list;
  view_after : Bag.t;
  negative : bool;
}

type t = {
  engine : Engine.t;
  view : View_def.t;
  data : Bag.t;
  initial : Bag.t;
  metrics : Metrics.t;
  queue : Update_queue.t;
  record_history : bool;
  mutable algo : Algorithm.packed option;
  mutable rev_installs : install_record list;
  mutable rev_deliveries : Message.update list;
  mutable rev_listeners : (Delta.t -> unit) list;  (* newest first *)
}

let create engine ~view ~algorithm ~send ~init ?(record_history = true)
    ?(trace = Trace.create ()) () =
  let data = Bag.copy (Relation.as_bag init) in
  let t =
    { engine; view; data; initial = Bag.copy data; metrics = Metrics.create ();
      queue = Update_queue.create (); record_history; algo = None;
      rev_installs = []; rev_deliveries = []; rev_listeners = [] }
  in
  let instrumented_send i msg =
    t.metrics.Metrics.queries_sent <- t.metrics.Metrics.queries_sent + 1;
    t.metrics.Metrics.query_weight <-
      t.metrics.Metrics.query_weight + Message.weight_to_source msg;
    Trace.emit trace ~time:(Engine.now engine) ~who:"warehouse" "send %a"
      Message.pp_to_source msg;
    send i msg
  in
  let install delta ~txns =
    let negative =
      Delta.fold
        (fun tup c neg -> neg || Bag.count t.data tup + c < 0)
        delta false
    in
    Bag.merge_into ~into:t.data delta;
    t.metrics.Metrics.installs <- t.metrics.Metrics.installs + 1;
    t.metrics.Metrics.updates_incorporated <-
      t.metrics.Metrics.updates_incorporated + List.length txns;
    if negative then
      t.metrics.Metrics.negative_installs <-
        t.metrics.Metrics.negative_installs + 1;
    let now = Engine.now engine in
    List.iter
      (fun e ->
        Metrics.note_staleness t.metrics (now -. e.Update_queue.arrived_at))
      txns;
    if t.record_history then
      t.rev_installs <-
        { at = now;
          txns = List.map (fun e -> e.Update_queue.update.Message.txn) txns;
          view_after = Bag.copy t.data; negative }
        :: t.rev_installs;
    List.iter (fun f -> f delta) (List.rev t.rev_listeners)
  in
  let ctx =
    { Algorithm.engine; view; trace; metrics = t.metrics; queue = t.queue;
      send = instrumented_send; install;
      view_contents = (fun () -> t.data);
      fresh_qid =
        (let next = ref 0 in
         fun () ->
           incr next;
           !next) }
  in
  t.algo <- Some (Algorithm.instantiate algorithm ctx);
  t

let algo t = Option.get t.algo

let deliver t msg =
  match msg with
  | Message.Update_notice update ->
      t.metrics.Metrics.updates_received <-
        t.metrics.Metrics.updates_received + 1;
      t.metrics.Metrics.notice_weight <-
        t.metrics.Metrics.notice_weight + Delta.weight update.Message.delta;
      t.rev_deliveries <- update :: t.rev_deliveries;
      let entry =
        Update_queue.append t.queue update ~arrived_at:(Engine.now t.engine)
      in
      Metrics.note_queue_length t.metrics (Update_queue.length t.queue);
      Algorithm.packed_on_update (algo t) entry
  | Message.Answer _ | Message.Snapshot _ | Message.Eca_answer _ ->
      t.metrics.Metrics.answers_received <-
        t.metrics.Metrics.answers_received + 1;
      t.metrics.Metrics.answer_weight <-
        t.metrics.Metrics.answer_weight + Message.weight_to_warehouse msg;
      Algorithm.packed_on_answer (algo t) msg

(* prepend (O(1) per registration); install reverses so listeners still
   fire in registration order *)
let add_install_listener t f = t.rev_listeners <- f :: t.rev_listeners
let view_contents t = t.data
let metrics t = t.metrics
let queue t = t.queue
let algorithm_name t = Algorithm.packed_name (algo t)
let installs t = List.rev t.rev_installs
let deliveries t = List.rev t.rev_deliveries
let initial_view t = t.initial
let idle t = Algorithm.packed_idle (algo t)
