open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

type vc = {
  entry : Update_queue.entry;
  mutable dv : Partial.t;
  mutable temp : Partial.t;
  mutable pending : int list;
  mutable outstanding : int;
  mutable completed : bool;  (* swept, awaiting in-order install *)
  qid : int;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after restore *)
  mutable leg : Tracer.id;
}

(* The pipeline is a two-list deque (cf. Update_queue): [front] holds the
   oldest view changes in delivery order, [rear] the newest in reverse,
   and [depth] caches the total so refill never re-measures a list. *)
type state = {
  ctx : Algorithm.ctx;
  window : int;
  mutable front : vc list;  (* oldest first *)
  mutable rear : vc list;  (* newest first *)
  mutable depth : int; (* lint: allow L5 derived: restore recomputes it from the decoded pipeline *)
}

module Make (Cfg : sig
  val window : int
end) =
struct
  type t = state

  let name =
    if Cfg.window = 8 then "sweep-pipelined"
    else Printf.sprintf "sweep-pipelined(w=%d)" Cfg.window

  let create ctx =
    if Cfg.window < 1 then invalid_arg "Sweep_pipelined: window < 1";
    { ctx; window = Cfg.window; front = []; rear = []; depth = 0 }

  (* Whole pipeline in delivery order, for scans and snapshots. *)
  let pipeline t = t.front @ List.rev t.rear

  let push t vc =
    t.rear <- vc :: t.rear;
    t.depth <- t.depth + 1

  let normalize t =
    if t.front = [] then begin
      t.front <- List.rev t.rear;
      t.rear <- []
    end

  let trace t fmt =
    Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
      ~who:"warehouse" fmt

  let advance t vc =
    match vc.pending with
    | j :: rest ->
        vc.pending <- rest;
        vc.outstanding <- j;
        vc.temp <- vc.dv;
        vc.leg <-
          (if Obs.active t.ctx.obs then
             Obs.span t.ctx.obs ~parent:vc.span "query"
               [ ("source", Tracer.I j); ("qid", Tracer.I vc.qid) ]
           else Tracer.none);
        t.ctx.send j
          (Message.Sweep_query
             { qid = vc.qid; target = j; partial = Partial.copy vc.dv })
    | [] -> vc.completed <- true

  (* Install completed sweeps strictly in delivery order, then top the
     pipeline back up from the queue. *)
  let rec drain_and_refill t =
    normalize t;
    match t.front with
    | vc :: rest when vc.completed ->
        let view_delta = Algebra.select_project t.ctx.view vc.dv in
        trace t "pipelined install for %a" Message.pp_txn_id
          vc.entry.update.Message.txn;
        t.front <- rest;
        t.depth <- t.depth - 1;
        t.ctx.install view_delta ~txns:[ vc.entry ];
        Obs.finish t.ctx.obs vc.span;
        drain_and_refill t
    | _ -> refill t

  and refill t =
    if t.depth < t.window then
      match Update_queue.pop t.ctx.queue with
      | None -> ()
      | Some entry ->
          let i = entry.update.Message.txn.source in
          let n = View_def.n_sources t.ctx.view in
          let dv =
            Partial.of_source_delta t.ctx.view i entry.update.Message.delta
          in
          let span =
            if Obs.active t.ctx.obs then
              Obs.span t.ctx.obs (name ^ ".txn")
                [ ("txn",
                   Tracer.S
                     (Format.asprintf "%a" Message.pp_txn_id
                        entry.update.Message.txn));
                  ("depth", Tracer.I (t.depth + 1)) ]
            else Tracer.none
          in
          let vc =
            { entry; dv; temp = dv; pending = Sweep.sweep_order ~n ~i;
              outstanding = -1; completed = false;
              qid = t.ctx.fresh_qid (); span; leg = Tracer.none }
          in
          trace t "pipelined ViewChange(%a) begins (depth %d)"
            Message.pp_txn_id entry.update.Message.txn (t.depth + 1);
          push t vc;
          advance t vc;
          (* an n=1 view completes instantly; also keep filling *)
          drain_and_refill t

  let on_update t (_ : Update_queue.entry) = drain_and_refill t

  (* The "more elaborate mechanism to detect concurrent updates" (§5.3):
     for this sweep, the interfering updates from source [j] are those
     *delivered after* the update being swept — in the queue, or already
     being swept further down the pipeline. Earlier-delivered updates
     serialize before this one and are meant to be in the answer. *)
  let interfering_deltas t vc j =
    let queued =
      List.map
        (fun e -> e.Update_queue.update.Message.delta)
        (Update_queue.from_source t.ctx.queue j)
    in
    let in_pipeline =
      List.filter_map
        (fun other ->
          if
            other.entry.Update_queue.arrival > vc.entry.Update_queue.arrival
            && other.entry.update.Message.txn.source = j
          then Some other.entry.update.Message.delta
          else None)
        (pipeline t)
    in
    in_pipeline @ queued

  let on_answer t msg =
    match msg with
    | Message.Answer { qid; source = j; partial } -> (
        match
          List.find_opt
            (fun vc -> vc.qid = qid && vc.outstanding = j)
            (pipeline t)
        with
        | Some vc ->
            vc.outstanding <- -1;
            Obs.finish t.ctx.obs vc.leg;
            vc.leg <- Tracer.none;
            (match interfering_deltas t vc j with
            | [] -> vc.dv <- partial
            | deltas ->
                t.ctx.metrics.Metrics.compensations <-
                  t.ctx.metrics.Metrics.compensations + 1;
                if Obs.active t.ctx.obs then
                  Obs.event t.ctx.obs ~span:vc.span "compensate"
                    [ ("source", Tracer.I j) ];
                vc.dv <-
                  Algebra.compensate t.ctx.view ~answer:partial
                    ~interfering:(Delta.sum deltas) ~temp:vc.temp);
            advance t vc;
            drain_and_refill t
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Sweep_pipelined.on_answer: unexpected answer qid=%d from %d"
                 qid j))
    | Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _ ->
        invalid_arg "Sweep_pipelined.on_answer: unexpected message kind"

  let on_source_down _ _ = ()
  let on_source_up _ _ = ()
  let idle t = t.depth = 0 && Update_queue.is_empty t.ctx.queue

  module Snap = Repro_durability.Snap

  let snap_of_vc vc =
    Snap.List
      [ Algorithm.snap_of_entry vc.entry; Snap.Partial (Partial.copy vc.dv);
        Snap.Partial (Partial.copy vc.temp); Snap.ints vc.pending;
        Snap.Int vc.outstanding; Snap.Bool vc.completed; Snap.Int vc.qid ]

  let vc_of_snap s =
    match Snap.to_list s with
    | [ entry; dv; temp; pending; outstanding; completed; qid ] ->
        { entry = Algorithm.entry_of_snap entry; dv = Snap.to_partial dv;
          temp = Snap.to_partial temp; pending = Snap.to_ints pending;
          outstanding = Snap.to_int outstanding;
          completed = Snap.to_bool completed; qid = Snap.to_int qid;
          span = Tracer.none; leg = Tracer.none }
    | _ -> invalid_arg "Sweep_pipelined: malformed snapshot"

  (* Checkpoint encoding stays in delivery order, exactly as before the
     deque refactor. *)
  let snapshot t = Snap.List (List.map snap_of_vc (pipeline t))

  let restore ctx s =
    let vcs = List.map vc_of_snap (Snap.to_list s) in
    { ctx; window = Cfg.window; front = vcs; rear = [];
      depth = List.length vcs }
end

module Default = Make (struct
  let window = 8
end)

include Default

let with_window w : (module Algorithm.S) =
  (module Make (struct
    let window = w
  end))
