open Repro_relational
open Repro_protocol

(* Per-instance ledger: which global transactions are still missing parts,
   and the install buffer held back while any is open. *)
type ledger = {
  open_txns : (int, int) Hashtbl.t;
  mutable buffered : Delta.t;
  (* newest first; reversed into delivery order at flush and snapshot *)
  mutable rev_buffered_entries : Update_queue.entry list;
}

include Sweep_engine.Make (struct
  let name = "sweep-global"
  let compensate = true

  (* Completed entries are buffered (not installed) while a global
     transaction is open; their deltas would be visible to neither the
     aux projections nor the queue scan, so local answers are unsound
     here (see POLICY.local_answers). *)
  let local_answers = false

  type extra = ledger

  let create_extra _ =
    { open_txns = Hashtbl.create 8; buffered = Delta.empty ();
      rev_buffered_entries = [] }

  (* Account one processed update against its global transaction, if
     any. *)
  let note_part ledger (entry : Update_queue.entry) =
    match entry.update.Message.global with
    | None -> ()
    | Some { Message.gid; parts } ->
        let remaining =
          match Hashtbl.find_opt ledger.open_txns gid with
          | None -> parts - 1
          | Some r -> r - 1
        in
        if remaining = 0 then Hashtbl.remove ledger.open_txns gid
        else Hashtbl.replace ledger.open_txns gid remaining

  (* Buffer installs while any transaction is open; flush at boundaries
     so no view state exposes a partial transaction. *)
  let on_complete ctx ledger view_delta entry =
    note_part ledger entry;
    Bag.merge_into ~into:ledger.buffered view_delta;
    ledger.rev_buffered_entries <- entry :: ledger.rev_buffered_entries;
    if Hashtbl.length ledger.open_txns = 0 then begin
      let delta = ledger.buffered in
      let entries = List.rev ledger.rev_buffered_entries in
      ledger.buffered <- Delta.empty ();
      ledger.rev_buffered_entries <- [];
      ctx.Algorithm.install delta ~txns:entries
    end

  let extra_idle ledger =
    Hashtbl.length ledger.open_txns = 0 && ledger.rev_buffered_entries = []

  module Snap = Repro_durability.Snap

  (* Canonical dump: open transactions sorted by gid. *)
  let extra_snapshot ledger =
    let open_txns =
      Hashtbl.fold (fun gid r acc -> (gid, r) :: acc) ledger.open_txns []
      |> List.sort compare
      |> List.map (fun (gid, r) -> Snap.ints [ gid; r ])
    in
    Snap.List
      [ Snap.List open_txns; Snap.Delta (Delta.copy ledger.buffered);
        Snap.List
          (List.rev_map Algorithm.snap_of_entry ledger.rev_buffered_entries) ]

  let extra_restore _ s =
    match Snap.to_list s with
    | [ open_txns; buffered; entries ] ->
        let ledger =
          { open_txns = Hashtbl.create 8; buffered = Snap.to_delta buffered;
            rev_buffered_entries =
              List.rev_map Algorithm.entry_of_snap (Snap.to_list entries) }
        in
        List.iter
          (fun pair ->
            match Snap.to_ints pair with
            | [ gid; r ] -> Hashtbl.replace ledger.open_txns gid r
            | _ -> invalid_arg "sweep-global: malformed ledger snapshot")
          (Snap.to_list open_txns);
        ledger
    | _ -> invalid_arg "sweep-global: malformed snapshot"
end)
