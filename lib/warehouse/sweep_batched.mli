(** Batched SWEEP: one sweep amortized over a whole batch of queued
    updates.

    When an update reaches the head of the queue the algorithm
    proactively drains every queued update (capped at [batch_max],
    chosen up front — no termination hazard, no recursion fallback),
    coalesces them into per-source combined deltas D_i via {!Delta.sum},
    and runs one SWEEP leg per distinct source in ascending source
    order. Leg i's local error correction runs against the *combined*
    deltas: an answer from source j is compensated by the queued
    interference L_j always, plus the batch's own D_j when j > i — a
    right-leg source must contribute its pre-batch state. The summed
    view delta is installed as a single transition covering the whole
    batch, which the checker grades *completely* consistent (the install
    equals the next-|batch| database state; see DESIGN.md §10 for the
    multilinearity argument).

    Message cost: 2(n−1) per *distinct source* in the batch instead of
    per update — messages per update falls toward O(n/k) as the batch
    size k grows. *)

include Algorithm.S

(** Same algorithm with a custom batch-size cap (default 16). Raises on
    [create] when the cap is < 1. *)
val with_batch_max : int -> (module Algorithm.S)
