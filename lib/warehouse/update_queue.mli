(** The warehouse's UpdateMessageQueue (paper Fig. 4).

    Updates are appended in delivery order by the [LogUpdates] process and
    consumed by the maintenance algorithm. Because channels are FIFO, an
    entry from source [j] still in this queue when an answer from [j]
    arrives is *exactly* an interfering update (paper §4, footnote 2) —
    membership is the interference test every algorithm here uses. *)

open Repro_protocol

type entry = {
  update : Message.update;
  arrival : int;  (** warehouse delivery sequence number *)
  arrived_at : float;
}

type t

(** [capacity] bounds the queue length; admission control (the harness's
    backpressure layer) must defer or shed before delivery, so an
    over-capacity {!append} is a wiring bug and raises. Unbounded when
    omitted. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int option

(** Append in delivery order; returns the new entry. Raises
    [Invalid_argument] when the queue is at capacity. *)
val append : t -> Message.update -> arrived_at:float -> entry

(** Rebuild a queue from checkpointed entries (crash recovery),
    preserving original arrival numbers. *)
val of_entries : ?capacity:int -> entry list -> next_arrival:int -> t

(** Oldest entry, removed / not removed. *)
val pop : t -> entry option

(** Return an entry to the head (degraded-mode abort: the next {!pop}
    re-yields it, arrival number intact). Raises at capacity. *)
val push_front : t -> entry -> unit

(** Oldest entry satisfying [eligible], removed; ineligible (parked)
    entries ahead of it stay in place, in order — so they remain visible
    to {!from_source} interference tests. *)
val pop_eligible : t -> eligible:(entry -> bool) -> entry option

(** [take t ~max] removes and returns up to [max] oldest entries, oldest
    first — the batch drain used by {!Sweep_batched} when an update
    reaches the head of the queue. Raises [Invalid_argument] when [max]
    is negative. *)
val take : t -> max:int -> entry list

(** Batched {!pop_eligible}: up to [max] eligible entries, oldest first,
    skipping (and preserving) parked ones. *)
val take_eligible : t -> max:int -> eligible:(entry -> bool) -> entry list

val peek : t -> entry option
val is_empty : t -> bool
val length : t -> int

(** Entries from source [j], oldest first (left in place). *)
val from_source : t -> int -> entry list

(** Remove and return all entries from source [j], oldest first — Nested
    SWEEP's absorption of concurrent updates. *)
val take_from_source : t -> int -> entry list

(** All entries, oldest first. *)
val entries : t -> entry list

(** Delivery sequence number of the most recently appended entry
    ([-1] before any). *)
val last_arrival : t -> int
