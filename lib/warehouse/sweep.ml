let sweep_order ~n ~i = Sweep_order.order ~n ~i

include Sweep_engine.Make (struct
  let name = "sweep"
  let compensate = true
  let local_answers = true

  type extra = unit

  let create_extra _ = ()

  (* One install per update, immediately — complete consistency. *)
  let on_complete ctx () view_delta entry =
    ctx.Algorithm.install view_delta ~txns:[ entry ]

  let extra_idle () = true
  let extra_snapshot () = Repro_durability.Snap.Unit
  let extra_restore _ _ = ()
end)
