type t = {
  mutable updates_received : int;
  mutable updates_incorporated : int;
  mutable queries_sent : int;
  mutable answers_received : int;
  mutable query_weight : int;
  mutable answer_weight : int;
  mutable notice_weight : int;
  mutable installs : int;
  mutable compensations : int;
  mutable recursions : int;
  mutable fallbacks : int;
  mutable max_depth : int;
  mutable max_queue : int;
  mutable negative_installs : int;
  mutable staleness_sum : float;
  mutable staleness_max : float;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable duplicates_suppressed : int;
  mutable recoveries : int;
  mutable frames_lost : int;
  mutable wh_crashes : int;
  mutable wal_records : int;
  mutable wal_bytes : int;
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;
  mutable replayed_records : int;
  mutable recovery_seconds : float;
  mutable snapshots_fetched : int;
  mutable queue_deferred : int;
  mutable queue_shed : int;
  mutable batches : int;
  mutable max_batch : int;
  mutable query_timeouts : int;
  mutable breaker_trips : int;
  mutable stalled_updates : int;
  mutable degraded_time : float;
  mutable reads_served : int;
  mutable reads_stale : int;
  mutable reads_shed : int;
  mutable read_staleness_p50 : float;
  mutable read_staleness_p99 : float;
  mutable local_answers : int;
  mutable aux_bytes : int;
  mutable unindexed_scans : int;
}

let create () =
  { updates_received = 0; updates_incorporated = 0; queries_sent = 0;
    answers_received = 0; query_weight = 0; answer_weight = 0;
    notice_weight = 0; installs = 0; compensations = 0; recursions = 0;
    fallbacks = 0; max_depth = 0; max_queue = 0; negative_installs = 0;
    staleness_sum = 0.; staleness_max = 0.; retransmissions = 0;
    timeouts = 0; duplicates_suppressed = 0; recoveries = 0; frames_lost = 0;
    wh_crashes = 0; wal_records = 0; wal_bytes = 0; checkpoints = 0;
    checkpoint_bytes = 0; replayed_records = 0; recovery_seconds = 0.;
    snapshots_fetched = 0; queue_deferred = 0; queue_shed = 0; batches = 0;
    max_batch = 0; query_timeouts = 0; breaker_trips = 0; stalled_updates = 0;
    degraded_time = 0.; reads_served = 0; reads_stale = 0; reads_shed = 0;
    read_staleness_p50 = 0.; read_staleness_p99 = 0.; local_answers = 0;
    aux_bytes = 0; unindexed_scans = 0 }

let note_queue_length t len = if len > t.max_queue then t.max_queue <- len

let note_batch t size =
  t.batches <- t.batches + 1;
  if size > t.max_batch then t.max_batch <- size


let note_staleness t s =
  t.staleness_sum <- t.staleness_sum +. s;
  if s > t.staleness_max then t.staleness_max <- s

let mean_staleness t =
  if t.updates_incorporated = 0 then 0.
  else t.staleness_sum /. float_of_int t.updates_incorporated

let queries_per_update t =
  if t.updates_incorporated = 0 then 0.
  else float_of_int t.queries_sent /. float_of_int t.updates_incorporated

(* Total protocol messages (queries out + answers back) per incorporated
   txn — the quantity batching amortizes toward O(n/k). *)
let messages_per_update t =
  if t.updates_incorporated = 0 then 0.
  else
    float_of_int (t.queries_sent + t.answers_received)
    /. float_of_int t.updates_incorporated

(* Fraction of sweep legs answered from the aux store instead of a
   remote round trip (self-maintenance hit rate, DESIGN.md §14). *)
let aux_hit_rate t =
  let legs = t.local_answers + t.queries_sent in
  if legs = 0 then 0. else float_of_int t.local_answers /. float_of_int legs

(* Canonical flat export for the observability registry / BENCH.json.
   Order is the declaration order above; derived means go last. *)
let fields t : (string * [ `Int of int | `Float of float ]) list =
  [ ("updates_received", `Int t.updates_received);
    ("updates_incorporated", `Int t.updates_incorporated);
    ("queries_sent", `Int t.queries_sent);
    ("answers_received", `Int t.answers_received);
    ("query_weight", `Int t.query_weight);
    ("answer_weight", `Int t.answer_weight);
    ("notice_weight", `Int t.notice_weight);
    ("installs", `Int t.installs);
    ("compensations", `Int t.compensations);
    ("recursions", `Int t.recursions);
    ("fallbacks", `Int t.fallbacks);
    ("max_depth", `Int t.max_depth);
    ("max_queue", `Int t.max_queue);
    ("negative_installs", `Int t.negative_installs);
    ("staleness_sum", `Float t.staleness_sum);
    ("staleness_max", `Float t.staleness_max);
    ("retransmissions", `Int t.retransmissions);
    ("timeouts", `Int t.timeouts);
    ("duplicates_suppressed", `Int t.duplicates_suppressed);
    ("recoveries", `Int t.recoveries);
    ("frames_lost", `Int t.frames_lost);
    ("wh_crashes", `Int t.wh_crashes);
    ("wal_records", `Int t.wal_records);
    ("wal_bytes", `Int t.wal_bytes);
    ("checkpoints", `Int t.checkpoints);
    ("checkpoint_bytes", `Int t.checkpoint_bytes);
    ("replayed_records", `Int t.replayed_records);
    ("recovery_seconds", `Float t.recovery_seconds);
    ("snapshots_fetched", `Int t.snapshots_fetched);
    ("queue_deferred", `Int t.queue_deferred);
    ("queue_shed", `Int t.queue_shed);
    ("batches", `Int t.batches);
    ("max_batch", `Int t.max_batch);
    ("query_timeouts", `Int t.query_timeouts);
    ("breaker_trips", `Int t.breaker_trips);
    ("stalled_updates", `Int t.stalled_updates);
    ("degraded_time", `Float t.degraded_time);
    ("reads_served", `Int t.reads_served);
    ("reads_stale", `Int t.reads_stale);
    ("reads_shed", `Int t.reads_shed);
    ("read_staleness_p50", `Float t.read_staleness_p50);
    ("read_staleness_p99", `Float t.read_staleness_p99);
    ("local_answers", `Int t.local_answers);
    ("aux_bytes", `Int t.aux_bytes);
    ("unindexed_scans", `Int t.unindexed_scans);
    ("mean_staleness", `Float (mean_staleness t));
    ("queries_per_update", `Float (queries_per_update t));
    ("messages_per_update", `Float (messages_per_update t));
    ("aux_hit_rate", `Float (aux_hit_rate t)) ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>updates: %d received, %d incorporated in %d installs@,\
     messages: %d queries (%d tuples), %d answers (%d tuples)@,\
     compensations: %d; recursions: %d (max depth %d, %d fallbacks)@,\
     max queue: %d; negative installs: %d@,\
     staleness: mean %.3f, max %.3f"
    t.updates_received t.updates_incorporated t.installs t.queries_sent
    t.query_weight t.answers_received t.answer_weight t.compensations
    t.recursions t.max_depth t.fallbacks t.max_queue t.negative_installs
    (mean_staleness t) t.staleness_max;
  if
    t.retransmissions > 0 || t.timeouts > 0 || t.duplicates_suppressed > 0
    || t.recoveries > 0 || t.frames_lost > 0
  then
    Format.fprintf ppf
      "@,transport: %d frames lost, %d timeouts, %d retransmissions, %d \
       dups suppressed, %d recoveries"
      t.frames_lost t.timeouts t.retransmissions t.duplicates_suppressed
      t.recoveries;
  if t.wal_records > 0 || t.wh_crashes > 0 then
    Format.fprintf ppf
      "@,durability: %d crashes, %d WAL records (%d B), %d checkpoints (%d \
       B), %d replayed (%.3fs recovery)"
      t.wh_crashes t.wal_records t.wal_bytes t.checkpoints t.checkpoint_bytes
      t.replayed_records t.recovery_seconds;
  if t.queue_deferred > 0 || t.queue_shed > 0 then
    Format.fprintf ppf "@,backpressure: %d deferred, %d shed" t.queue_deferred
      t.queue_shed;
  if t.batches > 0 then
    Format.fprintf ppf
      "@,batching: %d batches (max size %d), %.2f messages/update" t.batches
      t.max_batch (messages_per_update t);
  if t.query_timeouts > 0 || t.breaker_trips > 0 || t.stalled_updates > 0 then
    Format.fprintf ppf
      "@,resilience: %d query timeouts, %d breaker trips, %d stalled \
       updates, %.3fs degraded"
      t.query_timeouts t.breaker_trips t.stalled_updates t.degraded_time;
  if t.reads_served > 0 || t.reads_shed > 0 then
    Format.fprintf ppf
      "@,serving: %d served (%d stale), %d shed; read staleness p50 %.3f, \
       p99 %.3f"
      t.reads_served t.reads_stale t.reads_shed t.read_staleness_p50
      t.read_staleness_p99;
  if t.local_answers > 0 || t.aux_bytes > 0 then
    Format.fprintf ppf
      "@,self-maint: %d local answers (%.0f%% of legs), aux store %d B"
      t.local_answers (100. *. aux_hit_rate t) t.aux_bytes;
  if t.unindexed_scans > 0 then
    Format.fprintf ppf "@,joins: %d unindexed probe scans" t.unindexed_scans;
  Format.fprintf ppf "@]"
