type t = {
  mutable updates_received : int;
  mutable updates_incorporated : int;
  mutable queries_sent : int;
  mutable answers_received : int;
  mutable query_weight : int;
  mutable answer_weight : int;
  mutable notice_weight : int;
  mutable installs : int;
  mutable compensations : int;
  mutable recursions : int;
  mutable fallbacks : int;
  mutable max_depth : int;
  mutable max_queue : int;
  mutable negative_installs : int;
  mutable staleness_sum : float;
  mutable staleness_max : float;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable duplicates_suppressed : int;
  mutable recoveries : int;
  mutable frames_lost : int;
}

let create () =
  { updates_received = 0; updates_incorporated = 0; queries_sent = 0;
    answers_received = 0; query_weight = 0; answer_weight = 0;
    notice_weight = 0; installs = 0; compensations = 0; recursions = 0;
    fallbacks = 0; max_depth = 0; max_queue = 0; negative_installs = 0;
    staleness_sum = 0.; staleness_max = 0.; retransmissions = 0;
    timeouts = 0; duplicates_suppressed = 0; recoveries = 0; frames_lost = 0 }

let note_queue_length t len = if len > t.max_queue then t.max_queue <- len

let note_staleness t s =
  t.staleness_sum <- t.staleness_sum +. s;
  if s > t.staleness_max then t.staleness_max <- s

let mean_staleness t =
  if t.updates_incorporated = 0 then 0.
  else t.staleness_sum /. float_of_int t.updates_incorporated

let queries_per_update t =
  if t.updates_incorporated = 0 then 0.
  else float_of_int t.queries_sent /. float_of_int t.updates_incorporated

let pp ppf t =
  Format.fprintf ppf
    "@[<v>updates: %d received, %d incorporated in %d installs@,\
     messages: %d queries (%d tuples), %d answers (%d tuples)@,\
     compensations: %d; recursions: %d (max depth %d, %d fallbacks)@,\
     max queue: %d; negative installs: %d@,\
     staleness: mean %.3f, max %.3f"
    t.updates_received t.updates_incorporated t.installs t.queries_sent
    t.query_weight t.answers_received t.answer_weight t.compensations
    t.recursions t.max_depth t.fallbacks t.max_queue t.negative_installs
    (mean_staleness t) t.staleness_max;
  if
    t.retransmissions > 0 || t.timeouts > 0 || t.duplicates_suppressed > 0
    || t.recoveries > 0 || t.frames_lost > 0
  then
    Format.fprintf ppf
      "@,transport: %d frames lost, %d timeouts, %d retransmissions, %d \
       dups suppressed, %d recoveries"
      t.frames_lost t.timeouts t.retransmissions t.duplicates_suppressed
      t.recoveries;
  Format.fprintf ppf "@]"
