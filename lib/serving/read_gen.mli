(** Seeded read-workload generator for the serving tier.

    Mirrors {!Repro_workload.Update_gen} on the read side: point lookups
    and aggregate reads arrive as a Poisson process at a configurable
    rate, optionally compressed through a {e flash-crowd} burst window
    during which the arrival rate is multiplied. Fully driven by the
    simulation engine and a split of the run's seeded PRNG, so read
    storms replay bit-identically. *)

open Repro_relational
open Repro_sim

type kind =
  | Point of Tuple.t  (** probe the view for one output tuple's count *)
  | Aggregate  (** whole-view aggregate (total multiplicity) *)

(** Flash-crowd window: between [at] and [at +. duration] the read rate
    is multiplied by [multiplier]. *)
type burst = { at : float; duration : float; multiplier : float }

type config = {
  rate : float;  (** mean reads per sim-time unit (outside any burst) *)
  n_reads : int;  (** total reads to issue *)
  p_point : float;  (** probability a read is a point lookup *)
  arity : int;  (** output arity of the view being probed *)
  domain : int;  (** attribute domain for generated point probes *)
  burst : burst option;
}

val default : config

(** Is sim time [now] inside the configured burst window? *)
val in_burst : config -> float -> bool

(** How many reads [rate] sustains over [horizon] sim-time units,
    burst excess included — used to size [n_reads] from a scenario's
    write horizon. 0 when [rate <= 0]. *)
val reads_over : rate:float -> burst:burst option -> horizon:float -> int

(** [drive engine rng cfg ~n_sessions ~read ()] schedules [cfg.n_reads]
    read arrivals with exponential inter-arrival gaps (mean [1/rate],
    compressed inside the burst window). Each arrival calls
    [read ~session ~kind] with a session uniform in [0, n_sessions).
    Raises [Invalid_argument] when [cfg.rate <= 0] or [n_sessions < 1]. *)
val drive :
  Engine.t -> Rng.t -> config -> n_sessions:int ->
  read:(session:int -> kind:kind -> unit) -> unit -> unit
