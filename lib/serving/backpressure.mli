(** Admission control for a bounded warehouse update queue.

    The warehouse's {!Repro_warehouse.Update_queue} can be given a hard
    capacity; something must then keep the number of updates {e in
    flight} — sent but not yet incorporated into the view — at or below
    it. Holding updates back at the {e receiver} would either break the
    FIFO interference test (paper §4 footnote 2 relies on per-source
    delivery order) or deadlock the transport, so backpressure is applied
    where updates are {e born}, at the workload layer: each admitted
    update takes a token; an update finding no token free waits in a
    per-source FIFO (preserving per-source order); tokens return when the
    warehouse reports updates incorporated
    ({!Repro_warehouse.Node.add_incorporate_listener}).

    An update with an {e empty} delta that would have to wait is shed
    instead: it changes no source state and no expected view state, so
    dropping it under load costs nothing. *)

type t

val create : n_sources:int -> capacity:int -> t

(** [submit t ~source ~noop run] — run now (taking a token), queue behind
    this source's earlier waiters, or shed (only when [noop]). *)
val submit : t -> source:int -> noop:bool -> (unit -> unit) -> unit

(** Return [n] tokens and admit waiting updates, round-robin across
    sources from a persistent cursor (deterministic, starvation-free). *)
val release : t -> int -> unit

(** Updates that had to wait at least once. *)
val deferred : t -> int

(** No-op updates dropped at capacity. *)
val shed : t -> int

(** Updates currently waiting. *)
val waiting_count : t -> int
