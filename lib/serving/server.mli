(** Read-path front-end over the materialized view: bounded staleness,
    admission control, graceful degradation.

    The server answers point and aggregate reads directly from the
    warehouse's view while maintenance may be lagging (or parked behind
    an open circuit breaker). Every read is classified:

    - {b Fresh}: the view's staleness was within the SLO;
    - {b Stale}: over the SLO but under the hard ceiling — served
      immediately, stamped with its staleness (grace, not failure:
      during a source outage the warehouse keeps answering);
    - {b Shed}: rejected by admission control, either because staleness
      exceeded the hard ceiling (the answer would be uselessly old) or
      because all [read_cap] service tokens were busy (flash crowd).

    Staleness is virtual-time lag: the age of the oldest source update
    the warehouse has {e acknowledged} (delivered into its queue) but
    not yet {e incorporated} into the view; 0 when fully caught up.
    Admission reuses the {!Backpressure} token discipline — a read takes
    a token for a seeded service interval; a read finding none free is
    shed, never queued, so no read blocks unboundedly. *)

open Repro_relational
open Repro_sim
open Repro_observability

type config = {
  staleness_slo : float;  (** reads at or under this lag are [Fresh] *)
  staleness_ceiling : float;  (** reads over this lag are [Shed] *)
  read_cap : int;  (** service tokens: max reads in flight *)
  service_mean : float;  (** mean seeded per-read service time *)
}

val default_config : config

type outcome =
  | Fresh
  | Stale of float  (** served, stamped with its staleness *)
  | Shed

type shed_reason = Cap | Ceiling

(** One read as the server saw it, in serve order. *)
type record = {
  session : int;
  issued_at : float;
  outcome : outcome;
  staleness : float;
  answer : int;  (** tuple count (point) or view total (aggregate); 0 when shed *)
}

type t

(** [create ~engine ~rng ~obs ~n_sources ~view ()] — [view] is a
    closure (not a snapshot) so the server keeps reading the live view
    across warehouse crash/recovery. Raises [Invalid_argument] on
    [read_cap < 1], negative SLO, or ceiling below SLO. *)
val create :
  ?config:config -> engine:Engine.t -> rng:Rng.t -> obs:Obs.t ->
  n_sources:int -> view:(unit -> Bag.t) -> unit -> t

(** {2 Feeds from the warehouse} *)

(** [note_delivery t ~source ~txn] — the warehouse acknowledged (queued)
    update [txn] of [source]; it now counts against staleness. *)
val note_delivery : t -> source:int -> txn:int -> unit

(** [note_install t entries] — an install incorporated the given
    [(source, txn)] updates into the view. *)
val note_install : t -> (int * int) list -> unit

(** {2 Serving} *)

(** Serve (or shed) one read at the current sim time. Opens one obs span
    per read; served reads hold a service token until a seeded
    exponential service delay elapses. *)
val read : t -> session:int -> kind:Read_gen.kind -> outcome

(** Current virtual-time staleness. *)
val staleness : t -> float

(** {2 Counters and logs} *)

val served : t -> int
(** [fresh + stale]. *)

val fresh : t -> int
val stale : t -> int

val shed : t -> int
(** [shed_cap + shed_ceiling]. *)

val shed_cap : t -> int
val shed_ceiling : t -> int

(** Quantiles over the staleness stamps of {e served} reads. *)
val staleness_p50 : t -> float

val staleness_p99 : t -> float
val staleness_histogram : t -> Histogram.t
val latency_histogram : t -> Histogram.t

(** Every read in serve order (including shed ones). *)
val log : t -> record list

(** Served reads as {!Repro_consistency.Checker.read_view}s, ready for
    {!Repro_consistency.Checker.check_sessions}. *)
val read_log : t -> Repro_consistency.Checker.read_view list

val pp_outcome : Format.formatter -> outcome -> unit
