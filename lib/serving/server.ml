open Repro_relational
open Repro_sim
open Repro_observability

type config = {
  staleness_slo : float;
  staleness_ceiling : float;
  read_cap : int;
  service_mean : float;
}

let default_config =
  { staleness_slo = 2.0; staleness_ceiling = 16.0; read_cap = 16;
    service_mean = 0.05 }

type outcome = Fresh | Stale of float | Shed

type shed_reason = Cap | Ceiling

type record = {
  session : int;
  issued_at : float;
  outcome : outcome;
  staleness : float;
  answer : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  cfg : config;
  view : unit -> Bag.t;
  n_sources : int;
  bp : Backpressure.t;
  (* Staleness bookkeeping: FIFO of acknowledged-but-unincorporated
     updates keyed by (source, txn), pruned lazily against [installed]
     so both feeds stay O(1) amortized. *)
  pending : ((int * int) * float) Queue.t;
  installed : (int * int, unit) Hashtbl.t;
  seen : (int * int, unit) Hashtbl.t;  (* dedup re-acknowledged txns *)
  acked : int array;  (* per-source deliveries acknowledged *)
  incorporated : int array;  (* per-source updates reflected in the view *)
  mutable version : int;  (* installs observed *)
  mutable fresh : int;
  mutable stale : int;
  mutable shed_cap : int;
  mutable shed_ceiling : int;
  mutable log : record list;  (* reverse serve order *)
  mutable session_log : Repro_consistency.Checker.read_view list;
      (* reverse serve order; served reads only *)
  h_staleness : Histogram.t;
  h_latency : Histogram.t;
}

let create ?(config = default_config) ~engine ~rng ~obs ~n_sources ~view () =
  if config.read_cap < 1 then invalid_arg "Server.create: read_cap < 1";
  if config.staleness_slo < 0. then
    invalid_arg "Server.create: staleness_slo < 0";
  if config.staleness_ceiling < config.staleness_slo then
    invalid_arg "Server.create: ceiling < slo";
  { engine; rng; obs; cfg = config; view; n_sources;
    bp = Backpressure.create ~n_sources:1 ~capacity:config.read_cap;
    pending = Queue.create (); installed = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    acked = Array.make n_sources 0; incorporated = Array.make n_sources 0;
    version = 0; fresh = 0; stale = 0; shed_cap = 0; shed_ceiling = 0;
    log = []; session_log = [];
    h_staleness = Histogram.create (); h_latency = Histogram.create () }

let note_delivery t ~source ~txn =
  if source < 0 || source >= t.n_sources then
    invalid_arg "Server.note_delivery: source out of range";
  (* A txn re-acknowledged after a crash window must not enter the
     pending FIFO twice — its single install would only cancel one
     entry, pinning staleness forever. *)
  if not (Hashtbl.mem t.seen (source, txn)) then begin
    Hashtbl.replace t.seen (source, txn) ();
    Queue.push ((source, txn), Engine.now t.engine) t.pending;
    t.acked.(source) <- t.acked.(source) + 1
  end

let note_install t entries =
  t.version <- t.version + 1;
  List.iter
    (fun (source, txn) ->
      Hashtbl.replace t.installed (source, txn) ();
      if source >= 0 && source < t.n_sources then
        t.incorporated.(source) <- t.incorporated.(source) + 1)
    entries

(* Drop the pending prefix already reflected in the view. *)
let rec prune t =
  match Queue.peek_opt t.pending with
  | Some (key, _) when Hashtbl.mem t.installed key ->
      ignore (Queue.pop t.pending);
      Hashtbl.remove t.installed key;
      prune t
  | _ -> ()

(* Staleness = age of the oldest acknowledged-but-unincorporated source
   update; 0 when the view is fully caught up. *)
let staleness t =
  prune t;
  match Queue.peek_opt t.pending with
  | None -> 0.
  | Some (_, arrived) -> Engine.now t.engine -. arrived

let answer t kind =
  let bag = t.view () in
  match (kind : Read_gen.kind) with
  | Point tup -> Bag.count bag tup
  | Aggregate -> Bag.total bag

let record t r = t.log <- r :: t.log

let read t ~session ~kind =
  let issued_at = Engine.now t.engine in
  let st = staleness t in
  let span =
    Obs.span t.obs "read"
      [ ("session", Tracer.I session); ("staleness", Tracer.F st) ]
  in
  let shed reason =
    (match reason with
    | Ceiling -> t.shed_ceiling <- t.shed_ceiling + 1
    | Cap -> t.shed_cap <- t.shed_cap + 1);
    Obs.event t.obs ~span "read.shed"
      [ ("reason", Tracer.S (match reason with Ceiling -> "ceiling" | Cap -> "cap")) ];
    Obs.finish t.obs span;
    record t { session; issued_at; outcome = Shed; staleness = st; answer = 0 };
    Shed
  in
  if st > t.cfg.staleness_ceiling then shed Ceiling
  else begin
    let admitted = ref false in
    (* [submit ~noop:true] is try-acquire: runs now taking a token, or
       sheds — serving source 0 only, so its wait queue is always empty. *)
    Backpressure.submit t.bp ~source:0 ~noop:true (fun () -> admitted := true);
    if not !admitted then shed Cap
    else begin
      let ans = answer t kind in
      let outcome = if st <= t.cfg.staleness_slo then Fresh else Stale st in
      (match outcome with
      | Fresh -> t.fresh <- t.fresh + 1
      | Stale _ -> t.stale <- t.stale + 1
      | Shed -> ());
      Histogram.record t.h_staleness st;
      record t { session; issued_at; outcome; staleness = st; answer = ans };
      t.session_log <-
        { Repro_consistency.Checker.session; issued_at; version = t.version;
          incorporated = Array.copy t.incorporated;
          acked = Array.copy t.acked }
        :: t.session_log;
      (* The token is held for a seeded service interval — this is what
         makes the cap bite under a flash crowd. *)
      Engine.schedule t.engine
        ~delay:(Rng.exponential t.rng ~mean:t.cfg.service_mean)
        (fun () ->
          Histogram.record t.h_latency (Engine.now t.engine -. issued_at);
          Obs.finish t.obs span;
          Backpressure.release t.bp 1);
      outcome
    end
  end

let served t = t.fresh + t.stale
let fresh t = t.fresh
let stale t = t.stale
let shed t = t.shed_cap + t.shed_ceiling
let shed_cap t = t.shed_cap
let shed_ceiling t = t.shed_ceiling
let staleness_p50 t = Histogram.p50 t.h_staleness
let staleness_p99 t = Histogram.p99 t.h_staleness
let staleness_histogram t = t.h_staleness
let latency_histogram t = t.h_latency

let log t = List.rev t.log
let read_log t = List.rev t.session_log

let pp_outcome ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Stale s -> Format.fprintf ppf "stale(%.3f)" s
  | Shed -> Format.pp_print_string ppf "shed"
