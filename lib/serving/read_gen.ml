open Repro_relational
open Repro_sim

type kind = Point of Tuple.t | Aggregate

type burst = { at : float; duration : float; multiplier : float }

type config = {
  rate : float;
  n_reads : int;
  p_point : float;
  arity : int;
  domain : int;
  burst : burst option;
}

let default =
  { rate = 4.0; n_reads = 100; p_point = 0.7; arity = 2; domain = 16;
    burst = None }

let in_burst cfg now =
  match cfg.burst with
  | None -> false
  | Some b -> now >= b.at && now < b.at +. b.duration

(* Mean inter-read gap at sim time [now]: 1/rate, compressed by the
   burst multiplier inside the flash-crowd window. *)
let mean_gap cfg now =
  let base = 1. /. cfg.rate in
  if in_burst cfg now then
    match cfg.burst with
    | Some b -> base /. b.multiplier
    | None -> base
  else base

let gen_kind rng cfg =
  if Rng.bool rng cfg.p_point then
    (* a point lookup: probe the view for one concrete output tuple
       (usually absent — a primary-key miss — sometimes a hit) *)
    Point (Tuple.ints (List.init cfg.arity (fun _ -> Rng.int rng cfg.domain)))
  else Aggregate

(* How many reads [rate] sustains over [horizon] sim-time units, burst
   excess included — the harness uses this to size [n_reads] from a
   scenario's write horizon. *)
let reads_over ~rate ~burst ~horizon =
  if rate <= 0. then 0
  else
    let extra =
      match burst with
      | None -> 0.
      | Some b -> rate *. (b.multiplier -. 1.) *. b.duration
    in
    int_of_float ((rate *. horizon) +. extra)

let drive engine rng cfg ~n_sessions ~read () =
  if cfg.rate <= 0. then invalid_arg "Read_gen.drive: rate <= 0";
  if n_sessions < 1 then invalid_arg "Read_gen.drive: n_sessions < 1";
  let rec emit remaining =
    if remaining > 0 then begin
      let session = Rng.int rng n_sessions in
      read ~session ~kind:(gen_kind rng cfg);
      Engine.schedule engine
        ~delay:(Rng.exponential rng ~mean:(mean_gap cfg (Engine.now engine)))
        (fun () -> emit (remaining - 1))
    end
  in
  Engine.schedule engine
    ~delay:(Rng.exponential rng ~mean:(mean_gap cfg 0.))
    (fun () -> emit cfg.n_reads)
