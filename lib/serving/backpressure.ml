type t = {
  mutable tokens : int;
  waiting : (unit -> unit) Queue.t array;  (* per-source FIFO *)
  mutable deferred : int;
  mutable shed : int;
  mutable cursor : int;  (* round-robin admission position *)
}

let create ~n_sources ~capacity =
  if capacity < 1 then invalid_arg "Backpressure.create: capacity < 1";
  if n_sources < 1 then invalid_arg "Backpressure.create: n_sources < 1";
  { tokens = capacity; waiting = Array.init n_sources (fun _ -> Queue.create ());
    deferred = 0; shed = 0; cursor = 0 }

let waiting_count t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.waiting

(* Admit deferred updates round-robin from a persistent cursor —
   deterministic, and fair. (Always resuming the lowest-numbered source
   first starved high-index sources under sustained load: every release
   went to source 0's queue while source n−1 waited forever.) Per-source
   FIFO order is preserved because an update only ever waits behind
   earlier updates of its own source. *)
let rec pump t =
  if t.tokens > 0 then
    let n = Array.length t.waiting in
    let rec find tried =
      if tried >= n then None
      else
        let i = (t.cursor + tried) mod n in
        if Queue.is_empty t.waiting.(i) then find (tried + 1)
        else begin
          t.cursor <- (i + 1) mod n;
          Some (Queue.pop t.waiting.(i))
        end
    in
    match find 0 with
    | None -> ()
    | Some run ->
        t.tokens <- t.tokens - 1;
        run ();
        pump t

let submit t ~source ~noop run =
  (* FIFO per source: if earlier updates from this source are still
     waiting, this one must wait behind them even if a token is free. *)
  if t.tokens > 0 && Queue.is_empty t.waiting.(source) then begin
    t.tokens <- t.tokens - 1;
    run ()
  end
  else if noop then
    (* An empty-delta update changes no source state and no expected
       view; dropping it at capacity is load shedding with no
       correctness cost. *)
    t.shed <- t.shed + 1
  else begin
    t.deferred <- t.deferred + 1;
    Queue.push run t.waiting.(source)
  end

let release t n =
  if n < 0 then invalid_arg "Backpressure.release: n < 0";
  t.tokens <- t.tokens + n;
  pump t

let deferred t = t.deferred
let shed t = t.shed
