(** The update & query server at a data source (paper Fig. 3).

    Two duties: forward each local update to the warehouse as it is
    applied, and answer incremental sweep queries by joining the received
    ΔV with the local base relation. Requests are serviced sequentially
    and atomically with respect to local updates — an event in the
    simulator is indivisible, which is exactly the paper's assumption. *)

open Repro_relational
open Repro_sim
open Repro_protocol

type t

(** [create ?strategy engine ~view ~id ~init ~send ~trace] builds the
    server for source [id] with initial relation [init]; its base table
    auto-indexes the view's join columns. [strategy] (default
    {!Join_strategy.default}, i.e. [Probe]) selects how sweep-query join
    legs execute. [send] transmits a message to the warehouse (normally
    a FIFO channel endpoint). *)
val create :
  ?strategy:Join_strategy.t ->
  Engine.t ->
  view:View_def.t ->
  id:int ->
  init:Relation.t ->
  send:(Message.to_warehouse -> unit) ->
  trace:Trace.t ->
  t

val id : t -> int
val table : t -> Base_table.t

(** The leg-execution strategy this server was created with. *)
val strategy : t -> Join_strategy.t

(** Apply one local update transaction and notify the warehouse
    (the [SendUpdates] process of Fig. 3). [global] tags this update as
    one part of a type-3 multi-source transaction. *)
val local_update :
  ?global:Message.global_tag -> t -> Delta.t -> Message.txn_id

(** Service one warehouse request (the [ProcessQuery] process of Fig. 3).
    Raises [Invalid_argument] on [Eca_query] — that message targets the
    centralized ECA site, not a distributed source. *)
val handle : t -> Message.to_source -> unit
