(** The centralized site used by the ECA baseline.

    ECA (Zhuge et al. 1995) assumes a *single* data source storing all the
    base relations (paper §3). This site hosts every base table, applies
    local updates to any of them, and evaluates multi-term compensating
    query expressions atomically. *)

open Repro_relational
open Repro_sim
open Repro_protocol

type t

(** [create ?strategy engine ~view ~inits ~send ~trace] — every hosted
    base table auto-indexes its join columns from [view]; [strategy]
    (default [Probe]) selects how join legs against unpinned relations
    execute, both for sweep queries and inside query-term evaluation
    (terms fan out from the lowest pinned position so every intermediate
    stays delta-sized). *)
val create :
  ?strategy:Join_strategy.t ->
  Engine.t ->
  view:View_def.t ->
  inits:Relation.t array ->
  send:(Message.to_warehouse -> unit) ->
  trace:Trace.t ->
  t

val table : t -> int -> Base_table.t

(** Apply an update to relation [source] and notify the warehouse. *)
val local_update : t -> source:int -> Delta.t -> Message.txn_id

(** Evaluate an [Eca_query] atomically against the current relations and
    answer with the summed full-width delta. Other messages are also
    serviced (the site can answer sweep queries, making it a drop-in
    single-site source). *)
val handle : t -> Message.to_source -> unit

(** [eval_terms t terms] — exposed for tests: the summed full-width result
    of a query expression. *)
val eval_terms : t -> Message.eca_term list -> Partial.t
