open Repro_relational
open Repro_sim
open Repro_protocol

type t = {
  engine : Engine.t;
  view : View_def.t;
  tables : Base_table.t array;
  strategy : Join_strategy.t;
  send : Message.to_warehouse -> unit;
  trace : Trace.t;
}

let create ?(strategy = Join_strategy.default) engine ~view ~inits ~send
    ~trace =
  let n = View_def.n_sources view in
  if Array.length inits <> n then
    invalid_arg "Eca_site.create: need one initial relation per position";
  { engine; view;
    tables = Array.mapi (fun i r -> Base_table.create ~source:i ~view r) inits;
    strategy; send; trace }

let table t i = t.tables.(i)

let local_update t ~source delta =
  let txn = Base_table.apply t.tables.(source) delta in
  let now = Engine.now t.engine in
  Trace.emit t.trace ~time:now ~who:"eca-site" "apply %a = %a"
    Message.pp_txn_id txn Delta.pp delta;
  t.send
    (Message.Update_notice
       { txn; delta = Delta.copy delta; occurred_at = now; global = None });
  txn

(* Extend a partial with the current relation of unpinned position [j],
   per the configured strategy (same dispatch as Source_node). *)
let extend_leg t partial j =
  let fallback () =
    Algebra.extend t.view partial
      ~with_relation:(j, Base_table.relation t.tables.(j))
  in
  match t.strategy with
  | Join_strategy.Pairwise -> fallback ()
  | Join_strategy.Probe -> (
      match
        Algebra.extend_with_probe t.view partial ~source:j
          ~probe:(fun ~col ~value -> Base_table.probe t.tables.(j) ~col ~value)
      with
      | Some answer -> answer
      | None -> fallback ())
  | Join_strategy.Trie -> (
      match
        Trie_join.extend t.view partial ~source:j
          ~trie:(fun ~col -> Base_table.trie t.tables.(j) ~col)
      with
      | Some answer -> answer
      | None -> fallback ())

(* Evaluate one term: a chain join over all positions where pinned
   positions contribute the pinned delta and the rest contribute the
   current base relation. Evaluation fans out from the lowest pinned
   position, so every intermediate stays delta-sized and each unpinned
   leg is an index probe — the old left-to-right fold joined the full
   relation prefix left of the pin on every update. Chain junctions
   evaluate their condition when the two adjacent ranges meet, exactly
   as the distributed sweep does, so the result is bag-identical. *)
let eval_term t (pins : Message.eca_term) : Partial.t =
  let n = View_def.n_sources t.view in
  let pinned j = List.assoc_opt j pins in
  match List.sort (fun (a, _) (b, _) -> Int.compare a b) pins with
  | [] ->
      (* no pin: the full chain join (used by no algorithm today) *)
      let acc =
        ref (Partial.of_relation t.view 0 (Base_table.relation t.tables.(0)))
      in
      for j = 1 to n - 1 do
        acc :=
          Algebra.join t.view !acc
            (Partial.of_relation t.view j (Base_table.relation t.tables.(j)))
      done;
      !acc
  | (start, d0) :: _ ->
      let acc = ref (Partial.of_source_delta t.view start d0) in
      let leg j =
        match pinned j with
        | Some d ->
            let pp = Partial.of_source_delta t.view j d in
            acc :=
              (if j < !acc.Partial.lo then Algebra.join t.view pp !acc
               else Algebra.join t.view !acc pp)
        | None -> acc := extend_leg t !acc j
      in
      for j = start - 1 downto 0 do
        leg j
      done;
      for j = start + 1 to n - 1 do
        leg j
      done;
      !acc

let eval_terms t terms =
  match terms with
  | [] -> invalid_arg "Eca_site.eval_terms: empty expression"
  | first :: rest ->
      List.fold_left
        (fun acc term -> Partial.add acc (eval_term t term))
        (eval_term t first) rest

let handle t msg =
  let now = Engine.now t.engine in
  match msg with
  | Message.Eca_query { qid; terms } ->
      let partial = eval_terms t terms in
      Trace.emit t.trace ~time:now ~who:"eca-site" "eca_query#%d (%d terms) -> %a"
        qid (List.length terms) Partial.pp partial;
      t.send (Message.Eca_answer { qid; partial })
  | Message.Sweep_query { qid; target; partial } ->
      let answer = extend_leg t partial target in
      t.send (Message.Answer { qid; source = target; partial = answer })
  | Message.Fetch { qid; target } ->
      t.send
        (Message.Snapshot
           { qid; source = target;
             relation = Relation.copy (Base_table.relation t.tables.(target)) })
