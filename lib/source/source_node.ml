open Repro_relational
open Repro_sim
open Repro_protocol

type t = {
  engine : Engine.t;
  view : View_def.t;
  node_id : int;
  tbl : Base_table.t;
  strategy : Join_strategy.t;
  send : Message.to_warehouse -> unit;
  trace : Trace.t;
}

let create ?(strategy = Join_strategy.default) engine ~view ~id ~init ~send
    ~trace =
  if id < 0 || id >= View_def.n_sources view then
    invalid_arg "Source_node.create: id out of range";
  { engine; view; node_id = id;
    tbl = Base_table.create ~source:id ~view init;
    strategy; send; trace }

let id t = t.node_id
let table t = t.tbl
let strategy t = t.strategy

let who t = Printf.sprintf "source%d" t.node_id

(* One delta join leg, executed per the configured strategy. Probe and
   trie cover every junction with at least one equality; the rare
   cross-product junction falls back to the generic hash join. All three
   paths are bag-identical (the strategy differential suite proves it). *)
let answer_leg t partial =
  let fallback () =
    Algebra.extend t.view partial
      ~with_relation:(t.node_id, Base_table.relation t.tbl)
  in
  match t.strategy with
  | Join_strategy.Pairwise -> fallback ()
  | Join_strategy.Probe -> (
      match
        Algebra.extend_with_probe t.view partial ~source:t.node_id
          ~probe:(fun ~col ~value -> Base_table.probe t.tbl ~col ~value)
      with
      | Some answer -> answer
      | None -> fallback ())
  | Join_strategy.Trie -> (
      match
        Trie_join.extend t.view partial ~source:t.node_id
          ~trie:(fun ~col -> Base_table.trie t.tbl ~col)
      with
      | Some answer -> answer
      | None -> fallback ())

let local_update ?global t delta =
  let txn = Base_table.apply t.tbl delta in
  let now = Engine.now t.engine in
  Trace.emit t.trace ~time:now ~who:(who t) "apply %a = %a" Message.pp_txn_id
    txn Delta.pp delta;
  t.send
    (Message.Update_notice
       { txn; delta = Delta.copy delta; occurred_at = now; global });
  txn

let handle t msg =
  let now = Engine.now t.engine in
  match msg with
  | Message.Sweep_query { qid; target; partial } ->
      if target <> t.node_id then
        invalid_arg "Source_node.handle: sweep query misrouted";
      let answer = answer_leg t partial in
      Trace.emit t.trace ~time:now ~who:(who t) "query#%d %a -> %a" qid
        Partial.pp partial Partial.pp answer;
      t.send (Message.Answer { qid; source = t.node_id; partial = answer })
  | Message.Fetch { qid; target } ->
      if target <> t.node_id then
        invalid_arg "Source_node.handle: fetch misrouted";
      Trace.emit t.trace ~time:now ~who:(who t) "fetch#%d" qid;
      t.send
        (Message.Snapshot
           { qid; source = t.node_id;
             relation = Relation.copy (Base_table.relation t.tbl) })
  | Message.Eca_query _ ->
      invalid_arg "Source_node.handle: Eca_query sent to a distributed source"
