(** A base relation plus its local transaction log.

    Updates are applied atomically and sequence-numbered; the log is the
    per-source ground truth the consistency checker replays. *)

open Repro_relational
open Repro_protocol

type t

(** [create ~source ?indexes ?view rel] — [indexes] lists local columns
    to keep persistent hash indexes on; [view] additionally derives this
    source's join columns from the chain's join conditions
    ({!join_columns}) so every delta join leg can probe by default.
    Indexes are maintained incrementally by {!apply} and served by
    {!probe}. *)
val create : source:int -> ?indexes:int list -> ?view:View_def.t ->
  Relation.t -> t

val source : t -> int

(** The local columns of source [id] named by [view]'s join equalities —
    the columns {!create} auto-indexes when given [?view]. *)
val join_columns : View_def.t -> int -> int list

(** Columns with a live index. *)
val indexed_columns : t -> int list

(** [probe t ~col ~value] — all tuples whose [col] equals [value], with
    multiplicities. Served by the persistent index when [col] is
    indexed; otherwise degrades to an O(n) relation scan counted in
    {!scan_count} (the default-strategy suites assert that counter
    stays 0, so a regression to the scan path fails tests instead of
    silently costing 27×). *)
val probe : t -> col:int -> value:Value.t -> (Tuple.t * int) list

(** Probes on this table that found no index and degraded to a scan.
    Per table — no process-global state — so the harness sums the
    tables it created into [Metrics.unindexed_scans]. *)
val scan_count : t -> int

(** [trie t ~col] — sort-order trie over the current relation keyed on
    [col] (built from the persistent index when one exists), cached
    until the next {!apply}. Serves the [Trie] join strategy. *)
val trie : t -> col:int -> Trie_join.t

(** The live relation (mutated by {!apply}); treat as read-only. *)
val relation : t -> Relation.t

(** Atomically apply one update transaction (single update or
    source-local multi-update, paper §2) and log it. Raises
    [Invalid_argument] when a delete refers to absent tuples. *)
val apply : t -> Delta.t -> Message.txn_id

(** Applied transactions, oldest first. *)
val log : t -> (Message.txn_id * Delta.t) list

(** Number of transactions applied. *)
val applied : t -> int
