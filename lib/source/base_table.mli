(** A base relation plus its local transaction log.

    Updates are applied atomically and sequence-numbered; the log is the
    per-source ground truth the consistency checker replays. *)

open Repro_relational
open Repro_protocol

type t

(** [create ~source ?indexes rel] — [indexes] lists local columns to keep
    persistent hash indexes on (typically the relation's join columns);
    indexes are maintained incrementally by {!apply} and served by
    {!probe}. *)
val create : source:int -> ?indexes:int list -> Relation.t -> t

val source : t -> int

(** Columns with a live index. *)
val indexed_columns : t -> int list

(** [probe t ~col ~value] — all tuples whose [col] equals [value], with
    multiplicities. Raises [Invalid_argument] naming the source and the
    column when [col] is not indexed. *)
val probe : t -> col:int -> value:Value.t -> (Tuple.t * int) list

(** The live relation (mutated by {!apply}); treat as read-only. *)
val relation : t -> Relation.t

(** Atomically apply one update transaction (single update or
    source-local multi-update, paper §2) and log it. Raises
    [Invalid_argument] when a delete refers to absent tuples. *)
val apply : t -> Delta.t -> Message.txn_id

(** Applied transactions, oldest first. *)
val log : t -> (Message.txn_id * Delta.t) list

(** Number of transactions applied. *)
val applied : t -> int
