open Repro_relational
open Repro_protocol

(* A per-column hash index: join value -> (tuple -> multiplicity). Kept
   exactly in sync with the relation by [apply]. *)
type index = (Value.t, (Tuple.t, int) Hashtbl.t) Hashtbl.t

type t = {
  src : int;
  rel : Relation.t;
  indexes : (int * index) list;
  mutable tries : (int * Trie_join.t) list;
      (* lazily built sort-order tries, invalidated wholesale by [apply];
         only the Trie strategy ever populates this cache *)
  mutable next_seq : int;
  mutable rev_log : (Message.txn_id * Delta.t) list;
  mutable scans : int;
      (* probes that found no index and degraded to an O(n) relation
         scan — per table, so concurrent runs (and, eventually, domains)
         never share a counter; the harness sums its own tables into
         Metrics.unindexed_scans and the default-strategy suites assert
         the sum stays 0 *)
}

let index_add (idx : index) tup col count =
  let v = Tuple.get tup col in
  let bucket =
    match Hashtbl.find_opt idx v with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx v b;
        b
  in
  let c = Option.value ~default:0 (Hashtbl.find_opt bucket tup) + count in
  if c = 0 then begin
    Hashtbl.remove bucket tup;
    if Hashtbl.length bucket = 0 then Hashtbl.remove idx v
  end
  else Hashtbl.replace bucket tup c

(* The local columns of source [id] named by the chain's join
   conditions: those get persistent hash indexes so sweep queries probe
   instead of scanning. *)
let join_columns view id =
  let ofs = View_def.offset view id in
  let of_joins i pick =
    if i < 0 || i >= View_def.n_sources view - 1 then []
    else
      List.map
        (fun eq -> pick eq - ofs)
        (View_def.join_between view i).Join_spec.equalities
  in
  of_joins (id - 1) snd @ of_joins id fst

let create ~source ?(indexes = []) ?view rel =
  let indexes =
    match view with
    | None -> indexes
    | Some v -> indexes @ join_columns v source
  in
  let indexes =
    List.map
      (fun col ->
        let idx : index = Hashtbl.create 64 in
        Relation.iter (fun tup c -> index_add idx tup col c) rel;
        (col, idx))
      (List.sort_uniq Int.compare indexes)
  in
  { src = source; rel; indexes; tries = []; next_seq = 0; rev_log = [];
    scans = 0 }

let source t = t.src
let relation t = t.rel
let indexed_columns t = List.map fst t.indexes

let probe t ~col ~value =
  match List.assoc_opt col t.indexes with
  | Some idx -> (
      match Hashtbl.find_opt idx value with
      | None -> []
      | Some bucket -> Hashtbl.fold (fun tup c acc -> (tup, c) :: acc) bucket [])
  | None ->
      (* No index: degrade to a counted O(n) scan rather than fail the
         query — the default-strategy suites assert the counter stays 0,
         so a call-site regression surfaces in tests, not in latency. *)
      t.scans <- t.scans + 1;
      let acc = ref [] in
      Relation.iter
        (fun tup c -> if Tuple.get tup col = value then acc := (tup, c) :: !acc)
        t.rel;
      !acc

let trie t ~col =
  match List.assoc_opt col t.tries with
  | Some tr -> tr
  | None ->
      let tr =
        match List.assoc_opt col t.indexes with
        | Some idx ->
            (* build from the index: values are already grouped *)
            Trie_join.of_rows
              (Hashtbl.fold
                 (fun _ bucket acc ->
                   Hashtbl.fold (fun tup c acc -> (tup, c) :: acc) bucket acc)
                 idx [])
              ~col
        | None -> Trie_join.of_relation t.rel ~col
      in
      t.tries <- (col, tr) :: t.tries;
      tr

let apply t delta =
  (match Relation.apply t.rel delta with
  | Ok () -> ()
  | Error tuples ->
      invalid_arg
        (Printf.sprintf "Base_table.apply: delete of absent tuple(s) %s at source %d"
           (String.concat ", " (List.map Tuple.to_string tuples))
           t.src));
  List.iter
    (fun (col, idx) ->
      Delta.iter (fun tup c -> index_add idx tup col c) delta)
    t.indexes;
  t.tries <- [];
  let txn = { Message.source = t.src; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.rev_log <- (txn, Delta.copy delta) :: t.rev_log;
  txn

let log t = List.rev t.rev_log
let applied t = t.next_seq
let scan_count t = t.scans
