open Repro_relational
open Repro_protocol

(* A per-column hash index: join value -> (tuple -> multiplicity). Kept
   exactly in sync with the relation by [apply]. *)
type index = (Value.t, (Tuple.t, int) Hashtbl.t) Hashtbl.t

type t = {
  src : int;
  rel : Relation.t;
  indexes : (int * index) list;
  mutable next_seq : int;
  mutable rev_log : (Message.txn_id * Delta.t) list;
}

let index_add (idx : index) tup col count =
  let v = Tuple.get tup col in
  let bucket =
    match Hashtbl.find_opt idx v with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx v b;
        b
  in
  let c = Option.value ~default:0 (Hashtbl.find_opt bucket tup) + count in
  if c = 0 then begin
    Hashtbl.remove bucket tup;
    if Hashtbl.length bucket = 0 then Hashtbl.remove idx v
  end
  else Hashtbl.replace bucket tup c

let create ~source ?(indexes = []) rel =
  let indexes =
    List.map
      (fun col ->
        let idx : index = Hashtbl.create 64 in
        Relation.iter (fun tup c -> index_add idx tup col c) rel;
        (col, idx))
      (List.sort_uniq Int.compare indexes)
  in
  { src = source; rel; indexes; next_seq = 0; rev_log = [] }

let source t = t.src
let relation t = t.rel
let indexed_columns t = List.map fst t.indexes

let probe t ~col ~value =
  let idx =
    match List.assoc_opt col t.indexes with
    | Some idx -> idx
    | None ->
        invalid_arg
          (Printf.sprintf
             "Base_table.probe: source %d has no index on column %d \
              (indexed columns: %s)"
             t.src col
             (match t.indexes with
             | [] -> "none"
             | l -> String.concat ", " (List.map (fun (c, _) -> string_of_int c) l)))
  in
  match Hashtbl.find_opt idx value with
  | None -> []
  | Some bucket -> Hashtbl.fold (fun tup c acc -> (tup, c) :: acc) bucket []

let apply t delta =
  (match Relation.apply t.rel delta with
  | Ok () -> ()
  | Error tuples ->
      invalid_arg
        (Printf.sprintf "Base_table.apply: delete of absent tuple(s) %s at source %d"
           (String.concat ", " (List.map Tuple.to_string tuples))
           t.src));
  List.iter
    (fun (col, idx) ->
      Delta.iter (fun tup c -> index_add idx tup col c) delta)
    t.indexes;
  let txn = { Message.source = t.src; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.rev_log <- (txn, Delta.copy delta) :: t.rev_log;
  txn

let log t = List.rev t.rev_log
let applied t = t.next_seq
