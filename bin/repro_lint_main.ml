(* repro-lint: the static-analysis pass enforcing the determinism,
   iteration-order, quadratic-pattern, exception-hygiene and
   snapshot-completeness invariants. See `repro_lint --help` and
   DESIGN.md §11. *)

let () = exit (Repro_lint.Driver.main Sys.argv)
