(* bench_check — the CI perf gate. Reads a BENCH.json file through the
   independent Jsonr decoder and validates it against the
   "repro-bench/1" schema (Bench_doc.validate). Exit 0 iff the document
   is well-formed and carries every required counter and histogram
   statistic. *)

open Repro_observability

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: bench_check BENCH.json";
        exit 2
  in
  let text =
    try read_file path
    with Sys_error msg ->
      Printf.eprintf "bench_check: %s\n" msg;
      exit 1
  in
  match Jsonr.parse text with
  | Error msg ->
      Printf.eprintf "bench_check: %s: invalid JSON: %s\n" path msg;
      exit 1
  | Ok doc -> (
      match Repro_harness.Bench_doc.validate doc with
      | Ok () ->
          Printf.printf "bench_check: %s: OK (schema %s)\n" path
            Repro_harness.Bench_doc.schema
      | Error msg ->
          Printf.eprintf "bench_check: %s: %s\n" path msg;
          exit 1)
