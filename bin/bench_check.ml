(* bench_check — the CI perf gate. Reads a BENCH.json file through the
   independent Jsonr decoder and validates it against the
   "repro-bench/1" schema (Bench_doc.validate). With --against PREV.json
   it additionally compares the two documents and fails on a >25%
   regression, per (algorithm, scenario) entry present in both, in

     - the messages_per_update counter, and
     - the staleness histogram's p99,

   both of which are deterministic per seed (the simulator runs on
   virtual time), so an exact cross-run comparison is sound. Wall-clock
   and ns/run figures are machine-dependent and never gated. *)

open Repro_observability

let tolerance = 0.25

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [lenient] is for the --against baseline only: an older committed
   BENCH_<n>.json legitimately predates counters a later layer added
   (e.g. BENCH_7.json has no local_answers / aux_bytes / aux_hit_rate),
   so it is held to the core-counter floor. The document under test is
   always validated strictly. *)
let load ?lenient path =
  let text =
    try read_file path
    with Sys_error msg ->
      Printf.eprintf "bench_check: %s\n" msg;
      exit 1
  in
  match Jsonr.parse text with
  | Error msg ->
      Printf.eprintf "bench_check: %s: invalid JSON: %s\n" path msg;
      exit 1
  | Ok doc -> (
      let warn msg = Printf.eprintf "bench_check: %s: warning: %s\n" path msg in
      match Repro_harness.Bench_doc.validate ?lenient ~warn doc with
      | Ok () -> doc
      | Error msg ->
          Printf.eprintf "bench_check: %s: %s\n" path msg;
          exit 1)

(* ————— comparison ————— *)

let number = function
  | Jsonw.Int i -> Some (float_of_int i)
  | Jsonw.Float f when Float.is_finite f -> Some f
  | _ -> None

let entries doc =
  match Jsonw.member "algorithms" doc with
  | Some (Jsonw.List l) ->
      List.filter_map
        (fun e ->
          match
            (Jsonw.member "algorithm" e, Jsonw.member "scenario" e)
          with
          | Some (Jsonw.String a), Some (Jsonw.String s) -> Some ((a, s), e)
          | _ -> None)
        l
  | _ -> []

let counter name entry =
  Option.bind (Jsonw.member "counters" entry) (fun c ->
      Option.bind (Jsonw.member name c) number)

let histogram_stat ~hist ~stat entry =
  Option.bind (Jsonw.member "histograms" entry) (fun hs ->
      Option.bind (Jsonw.member hist hs) (fun h ->
          Option.bind (Jsonw.member stat h) number))

(* A metric regresses when both documents carry it, the baseline is
   meaningful (> 0) and the new value exceeds the allowance. Entries or
   metrics present on only one side are skipped — adding an algorithm or
   scenario must not wedge the gate. *)
let compare_docs ~old_doc ~new_doc =
  let old_entries = entries old_doc in
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (key, new_entry) ->
      match List.assoc_opt key old_entries with
      | None -> ()
      | Some old_entry ->
          List.iter
            (fun (metric, read) ->
              match (read old_entry, read new_entry) with
              | Some old_v, Some new_v when old_v > 0. ->
                  incr compared;
                  if new_v > old_v *. (1. +. tolerance) then
                    regressions :=
                      (key, metric, old_v, new_v) :: !regressions
              | _ -> ())
            [ ("messages_per_update", counter "messages_per_update");
              ( "staleness_p99",
                histogram_stat ~hist:"staleness" ~stat:"p99" );
              ("read_staleness_p99", counter "read_staleness_p99") ])
    (entries new_doc);
  (!compared, List.rev !regressions)

let () =
  let path, against =
    match Array.to_list Sys.argv with
    | [ _; p ] -> (p, None)
    | [ _; p; "--against"; prev ] -> (p, Some prev)
    | _ ->
        prerr_endline "usage: bench_check BENCH.json [--against PREV.json]";
        exit 2
  in
  let doc = load path in
  Printf.printf "bench_check: %s: OK (schema %s)\n" path
    Repro_harness.Bench_doc.schema;
  match against with
  | None -> ()
  | Some prev ->
      let old_doc = load ~lenient:true prev in
      let compared, regressions =
        compare_docs ~old_doc ~new_doc:doc
      in
      if regressions = [] then
        Printf.printf
          "bench_check: %s vs %s: OK (%d metrics compared, none regressed \
           >%.0f%%)\n"
          path prev compared (100. *. tolerance)
      else begin
        List.iter
          (fun ((alg, sc), metric, old_v, new_v) ->
            Printf.eprintf
              "bench_check: REGRESSION %s/%s %s: %.4f -> %.4f (+%.1f%%, \
               allowed +%.0f%%)\n"
              alg sc metric old_v new_v
              (100. *. ((new_v /. old_v) -. 1.))
              (100. *. tolerance))
          regressions;
        exit 1
      end
