(* warehouse_sim — run any maintenance algorithm over a configurable
   scenario and report metrics and the verified consistency level.

   Examples:
     dune exec bin/warehouse_sim.exe -- --preset concurrent
     dune exec bin/warehouse_sim.exe -- -a nested-sweep -n 6 -u 200 --gap 0.4
     dune exec bin/warehouse_sim.exe -- -a eca --centralized --trace *)

open Cmdliner
open Repro_sim
open Repro_workload
open Repro_harness

let run_cmd algorithm preset n updates gap p_insert txn_size placement init
    domain seed latency centralized drop duplicate spike spike_factor crashes
    wh_crashes chaos checkpoint_every queue_capacity batch_max deadline
    breaker_k probe_limit stall_cap read_rate staleness_slo read_cap aux
    join no_check show_trace trace_spans json_out explain_sql =
  (match explain_sql with
  | Some query ->
      (match Repro_relational.View_parser.parse query with
      | Ok view ->
          Format.printf "%a@." Repro_relational.View_def.pp view;
          exit 0
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1)
  | None -> ());
  let base =
    match preset with
    | Some p -> (
        match Scenario.find_preset p with
        | Some s -> s
        | None ->
            Printf.eprintf "unknown preset %S; have: %s\n" p
              (String.concat ", " (List.map fst Scenario.presets));
            exit 2)
    | None -> Scenario.default
  in
  let placement =
    match placement with
    | "uniform" -> Update_gen.Uniform
    | "zipf" -> Update_gen.Zipf 1.1
    | "alternating" -> Update_gen.Alternating (0, n - 1)
    | other ->
        Printf.eprintf "unknown placement %S (uniform|zipf|alternating)\n"
          other;
        exit 2
  in
  let crashes =
    List.map
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ src; from_; until ] -> (
            match
              (int_of_string_opt src, float_of_string_opt from_,
               float_of_string_opt until)
            with
            | Some source, Some down_at, Some up_at when down_at < up_at ->
                if source < 0 || source >= n then begin
                  Printf.eprintf "--crash source %d out of range [0,%d)\n"
                    source n;
                  exit 2
                end;
                { Fault.source; down_at; up_at }
            | _ ->
                Printf.eprintf "bad --crash %S (want SRC:FROM:UNTIL)\n" spec;
                exit 2)
        | _ ->
            Printf.eprintf "bad --crash %S (want SRC:FROM:UNTIL)\n" spec;
            exit 2)
      crashes
  in
  let wh_crashes =
    List.map
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ from_; until ] -> (
            match (float_of_string_opt from_, float_of_string_opt until) with
            | Some wh_down_at, Some wh_up_at when wh_down_at < wh_up_at ->
                { Fault.wh_down_at; wh_up_at }
            | _ ->
                Printf.eprintf "bad --warehouse-crash %S (want FROM:UNTIL)\n"
                  spec;
                exit 2)
        | _ ->
            Printf.eprintf "bad --warehouse-crash %S (want FROM:UNTIL)\n" spec;
            exit 2)
      wh_crashes
  in
  if checkpoint_every < 0 then begin
    Printf.eprintf "--checkpoint-every must be >= 0, got %d\n" checkpoint_every;
    exit 2
  end;
  (match queue_capacity with
  | Some c when c < 1 ->
      Printf.eprintf "--queue-capacity must be >= 1, got %d\n" c;
      exit 2
  | _ -> ());
  if batch_max < 1 then begin
    Printf.eprintf "--batch-max must be >= 1, got %d\n" batch_max;
    exit 2
  end;
  List.iter
    (fun (name, p) ->
      if p < 0. || p >= 1. then begin
        Printf.eprintf "--%s must be in [0,1), got %g\n" name p;
        exit 2
      end)
    [ ("drop", drop); ("duplicate", duplicate); ("spike", spike) ];
  if spike_factor < 1. then begin
    Printf.eprintf "--spike-factor must be >= 1, got %g\n" spike_factor;
    exit 2
  end;
  let faults =
    if chaos then
      let rng = Rng.create (Int64.of_int seed) in
      Fault.chaos rng ~n_sources:n ~horizon:(float_of_int updates *. gap)
    else if
      drop = 0. && duplicate = 0. && spike = 0. && crashes = []
      && wh_crashes = []
    then base.Scenario.faults
    else
      { Fault.link = Fault.lossy ~drop ~duplicate ~spike ~spike_factor ();
        crashes; wh_crashes }
  in
  (match deadline with
  | Some d when d <= 0. ->
      Printf.eprintf "--deadline must be > 0, got %g\n" d;
      exit 2
  | _ -> ());
  if breaker_k < 1 then begin
    Printf.eprintf "--breaker-k must be >= 1, got %d\n" breaker_k;
    exit 2
  end;
  if probe_limit < 0 then begin
    Printf.eprintf "--probe-limit must be >= 0, got %d\n" probe_limit;
    exit 2
  end;
  if stall_cap < 1 then begin
    Printf.eprintf "--stall-cap must be >= 1, got %d\n" stall_cap;
    exit 2
  end;
  (match read_rate with
  | Some r when r < 0. ->
      Printf.eprintf "--read-rate must be >= 0, got %g\n" r;
      exit 2
  | _ -> ());
  if staleness_slo <= 0. then begin
    Printf.eprintf "--staleness-slo must be > 0, got %g\n" staleness_slo;
    exit 2
  end;
  if read_cap < 1 then begin
    Printf.eprintf "--read-cap must be >= 1, got %d\n" read_cap;
    exit 2
  end;
  let aux_mode =
    match aux with
    | None -> base.Scenario.aux_mode
    | Some s -> (
        match Repro_warehouse.Aux_store.mode_of_string s with
        | Some m -> m
        | None ->
            Printf.eprintf "unknown --aux %S (off|keys-only|full)\n" s;
            exit 2)
  in
  let join_strategy =
    match join with
    | None -> base.Scenario.join_strategy
    | Some s -> (
        match Repro_relational.Join_strategy.of_string s with
        | Some j -> j
        | None ->
            Printf.eprintf "unknown --join %S (pairwise|probe|trie)\n" s;
            exit 2)
  in
  let deadline =
    match deadline with
    | Some _ as d -> d
    | None -> if chaos then Some 16. else base.Scenario.deadline
  in
  let scenario =
    { Scenario.name = Option.value preset ~default:"cli";
      n_sources = n;
      init_size = init;
      domain = (if domain = 0 then init else domain);
      stream =
        { base.Scenario.stream with
          Update_gen.n_updates = updates; mean_gap = gap; p_insert;
          txn_size; placement };
      latency = Latency.Uniform (latency /. 2., latency *. 1.5);
      topology =
        (if centralized then Scenario.Centralized else base.Scenario.topology);
      faults;
      checkpoint_every;
      queue_capacity;
      batch_max;
      deadline;
      breaker_k;
      probe_limit;
      stall_cap;
      read_rate = Option.value read_rate ~default:base.Scenario.read_rate;
      staleness_slo;
      read_cap;
      read_burst = base.Scenario.read_burst;
      aux_mode;
      join_strategy;
      seed = Int64.of_int seed }
  in
  let alg =
    match Experiment.algorithm_by_name ~batch_max algorithm with
    | Some a -> a
    | None ->
        Printf.eprintf
          "unknown algorithm %S \
           (sweep|sweep-batched|nested-sweep|strobe|c-strobe|eca|naive|\
           recompute)\n"
          algorithm;
        exit 2
  in
  if algorithm = "eca" && scenario.Scenario.topology <> Scenario.Centralized
  then begin
    Printf.eprintf "eca requires --centralized (single-site architecture)\n";
    exit 2
  end;
  let trace = Trace.create ~enabled:show_trace () in
  let module Obs = Repro_observability.Obs in
  let want_obs = trace_spans || json_out <> None in
  let obs = if want_obs then Obs.create () else Obs.disabled () in
  let result =
    Experiment.run ~check:(not no_check) ~trace ~obs ~max_events:2_000_000
      scenario alg
  in
  if show_trace then
    List.iter
      (fun l ->
        Format.printf "[%8.3f] %-10s %s@." l.Trace.time l.Trace.who
          l.Trace.text)
      (Trace.lines trace);
  if trace_spans then
    print_string (Repro_observability.Tracer.render (Obs.tracer obs));
  (match json_out with
  | None -> ()
  | Some path ->
      let registry = Repro_observability.Registry.create () in
      let entry = Bench_doc.register registry ~obs result in
      Report.write_json path
        (Repro_observability.Registry.entry_json ~spans:trace_spans entry);
      Format.printf "wrote %s@." path);
  Format.printf "%a@." Experiment.pp_result result;
  if not result.Experiment.completed then
    Format.printf
      "NOTE: run was cut off at 2M events with work still queued (the \
       algorithm diverges on this workload).@."

let algorithm =
  Arg.(
    value & opt string "sweep"
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:
          "Maintenance algorithm: sweep, sweep-batched, nested-sweep, \
           strobe, c-strobe, eca, naive or recompute.")

let preset =
  Arg.(
    value & opt (some string) None
    & info [ "preset" ] ~docv:"NAME"
        ~doc:
          "Start from a named scenario (sequential, concurrent, bursty, \
           adversarial, centralized, degraded, crashy, chaos, read-heavy, \
           flash-crowd, self-maint); other flags override it.")

let n = Arg.(value & opt int 4 & info [ "n"; "sources" ] ~doc:"Number of data sources.")
let updates = Arg.(value & opt int 100 & info [ "u"; "updates" ] ~doc:"Update transactions to generate.")
let gap = Arg.(value & opt float 1.0 & info [ "gap" ] ~doc:"Mean inter-update gap (sim time units).")
let p_insert = Arg.(value & opt float 0.6 & info [ "p-insert" ] ~doc:"Probability an update is an insert.")
let txn_size = Arg.(value & opt int 1 & info [ "txn-size" ] ~doc:"Updates per source-local transaction.")
let placement = Arg.(value & opt string "uniform" & info [ "placement" ] ~doc:"Source placement: uniform, zipf or alternating.")
let init = Arg.(value & opt int 40 & info [ "init" ] ~doc:"Initial tuples per base relation.")
let domain = Arg.(value & opt int 0 & info [ "domain" ] ~doc:"Join-attribute domain (0 = same as --init).")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (runs are deterministic per seed).")
let latency = Arg.(value & opt float 1.0 & info [ "latency" ] ~doc:"Mean channel latency.")
let centralized = Arg.(value & flag & info [ "centralized" ] ~doc:"Host all base relations at one site (ECA's architecture).")
let drop = Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Per-frame loss probability; nonzero routes traffic over the reliable transport.")
let duplicate = Arg.(value & opt float 0.0 & info [ "duplicate" ] ~doc:"Per-frame duplication probability (suppressed by the transport receiver).")
let spike = Arg.(value & opt float 0.0 & info [ "spike" ] ~doc:"Latency-spike probability per frame.")
let spike_factor = Arg.(value & opt float 4.0 & info [ "spike-factor" ] ~doc:"Latency multiplier during a spike.")

let crashes =
  Arg.(
    value & opt_all string []
    & info [ "crash" ] ~docv:"SRC:FROM:UNTIL"
        ~doc:
          "Crash window: source $(i,SRC) is unreachable for sim times in \
           [FROM, UNTIL). Repeatable. The warehouse's in-flight queries are \
           retransmitted with backoff and answered after recovery.")

let wh_crashes =
  Arg.(
    value & opt_all string []
    & info [ "warehouse-crash" ] ~docv:"FROM:UNTIL"
        ~doc:
          "Crash the warehouse for sim times in [FROM, UNTIL). Repeatable. \
           On restart the warehouse reloads its latest checkpoint, replays \
           the write-ahead log tail and resumes in-flight work — no source \
           refetch. Implies the durable (WAL + checkpoint) code path.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Replace the fault schedule with a composed chaos schedule drawn \
           from the seed (heavy link faults, overlapping source-crash \
           windows, a warehouse outage) and arm query deadlines + circuit \
           breakers (default deadline 16 unless $(b,--deadline) is given).")

let checkpoint_every =
  Arg.(
    value & opt int 8
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:
          "Take a warehouse checkpoint every $(docv) write-ahead-log \
           records (0 disables checkpoints; recovery then replays the \
           whole log). Only meaningful with $(b,--warehouse-crash).")

let queue_capacity =
  Arg.(
    value & opt (some int) None
    & info [ "queue-capacity" ] ~docv:"CAP"
        ~doc:
          "Bound the warehouse update queue to $(docv) in-flight updates; \
           further updates wait at their source (backpressure) and no-op \
           updates are shed under load. Unset = unbounded.")

let batch_max =
  Arg.(
    value & opt int 16
    & info [ "batch-max" ] ~docv:"K"
        ~doc:
          "Cap on the queued updates sweep-batched coalesces into one \
           batched sweep (default 16; 1 degenerates to plain SWEEP). Only \
           $(b,-a sweep-batched) reads it.")

let deadline =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"D"
        ~doc:
          "Per-query transport deadline in sim time units. After $(docv) \
           without an answer the sender suspends and reports a timeout to \
           the source's circuit breaker instead of retransmitting forever \
           (distributed topology only). Unset = legacy infinite retry.")

let breaker_k =
  Arg.(
    value & opt int 3
    & info [ "breaker-k" ] ~docv:"K"
        ~doc:
          "Consecutive query deadline expiries before a source's circuit \
           breaker trips open (only with $(b,--deadline)).")

let probe_limit =
  Arg.(
    value & opt int 0
    & info [ "probe-limit" ] ~docv:"P"
        ~doc:
          "Failed half-open probes before a breaker is abandoned and the \
           run drains in degraded mode (0 = probe forever; only with \
           $(b,--deadline)).")

let stall_cap =
  Arg.(
    value & opt int 256
    & info [ "stall-cap" ] ~docv:"CAP"
        ~doc:
          "Parked-update bound for degraded mode: once $(docv) updates are \
           stalled behind open breakers, maintenance falls back to \
           blocking on the dead source.")

let read_rate =
  Arg.(
    value & opt (some float) None
    & info [ "read-rate" ] ~docv:"R"
        ~doc:
          "Attach the serving tier and issue $(docv) reads per sim time \
           unit against the materialized view (0 or unset = no read path; \
           presets read-heavy and flash-crowd set their own rate).")

let staleness_slo =
  Arg.(
    value & opt float 2.0
    & info [ "staleness-slo" ] ~docv:"S"
        ~doc:
          "Staleness SLO in sim time units: reads within $(docv) of view \
           lag are fresh; beyond it they are served stale (stamped) up to \
           a hard ceiling of 8x the SLO, past which they are shed.")

let read_cap =
  Arg.(
    value & opt int 16
    & info [ "read-cap" ] ~docv:"CAP"
        ~doc:
          "Admission-control token count: max reads in flight; further \
           reads are shed, never queued (only with $(b,--read-rate)).")

let aux =
  Arg.(
    value & opt (some string) None
    & info [ "aux" ] ~docv:"MODE"
        ~doc:
          "Self-maintenance auxiliary projections (DESIGN.md \\u{00A7}14): \
           $(b,off), $(b,keys-only) (keys + join columns) or $(b,full) \
           (every referenced column — sweep legs answered locally from the \
           aux store, no source queries). The self-maint preset sets \
           $(b,full).")

let join =
  Arg.(
    value & opt (some string) None
    & info [ "join" ] ~docv:"STRATEGY"
        ~doc:
          "Delta-join execution strategy (DESIGN.md \\u{00A7}15): $(b,probe) \
           (default — persistent hash indexes on every join column), \
           $(b,trie) (sort-order tries with leapfrog intersections) or \
           $(b,pairwise) (the legacy scan/hash-join path). All three \
           produce bit-identical views; only execution cost differs.")

let no_check = Arg.(value & flag & info [ "no-check" ] ~doc:"Skip the consistency checker (faster for huge runs).")
let show_trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full simulation trace.")

let trace_spans =
  Arg.(
    value & flag
    & info [ "trace-spans" ]
        ~doc:
          "Record structured spans (one tree per update transaction: \
           notice, sweep legs, compensations, install) and print the \
           rendered tree. With $(b,--json-out), spans are embedded in the \
           JSON document.")

let json_out =
  Arg.(
    value & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's counters and latency histograms (staleness, \
           queue length, message weights) to $(docv) as JSON.")

let explain_sql =
  Arg.(
    value & opt (some string) None
    & info [ "explain-sql" ] ~docv:"QUERY"
        ~doc:
          "Parse a SQL-like view definition (see Repro_relational.View_parser), \
           print the compiled view and exit.")

let cmd =
  let doc =
    "simulate incremental view maintenance at a data warehouse (SWEEP, \
     SIGMOD'97 reproduction)"
  in
  Cmd.v
    (Cmd.info "warehouse_sim" ~version:"1.0" ~doc)
    Term.(
      const run_cmd $ algorithm $ preset $ n $ updates $ gap $ p_insert
      $ txn_size $ placement $ init $ domain $ seed $ latency $ centralized
      $ drop $ duplicate $ spike $ spike_factor $ crashes
      $ wh_crashes $ chaos $ checkpoint_every $ queue_capacity $ batch_max
      $ deadline $ breaker_k $ probe_limit $ stall_cap
      $ read_rate $ staleness_slo $ read_cap $ aux $ join
      $ no_check $ show_trace $ trace_spans $ json_out $ explain_sql)

let () = exit (Cmd.eval cmd)
